// The blocked columnar scoring kernel carries the library's strongest
// contract: scalar row loop, blocked scalar, and SIMD paths produce
// BIT-IDENTICAL scores (EXPECT_EQ on doubles, never a tolerance), and every
// consumer routed through the kernel produces bit-identical output with and
// without the columnar mirror — including zero-weight functions, duplicate-
// heavy rows, denormal-adjacent magnitudes, and multiple thread counts.
#include "topk/score_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/candidate_index.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/rrr2d.h"
#include "core/sweep.h"
#include "data/column_blocks.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "eval/rank_regret.h"
#include "eval/regret_ratio.h"
#include "topk/rank.h"
#include "topk/threshold_algorithm.h"
#include "topk/topk.h"
#include "test_util.h"

namespace rrr {
namespace topk {
namespace {

data::ColumnBlocks MustBuild(const data::Dataset& ds) {
  Result<data::ColumnBlocks> blocks = data::ColumnBlocks::Build(ds, 1);
  RRR_CHECK(blocks.ok()) << blocks.status().ToString();
  return std::move(blocks).value();
}

struct Family {
  std::string name;
  data::Dataset data;
};

/// Dataset families that stress the kernel: plain uniform, tie-heavy
/// duplicates (quantized coordinates), a constant column (zero-information
/// attribute), and denormal-adjacent magnitudes where one wrong rounding —
/// e.g. a fused multiply-add in one path only — flips score comparisons.
std::vector<Family> Families(size_t n, size_t d, uint64_t seed) {
  std::vector<Family> families;
  families.push_back({"uniform", data::GenerateUniform(n, d, seed)});
  {
    const data::Dataset pool = data::GenerateUniform(n / 8 + 2, d, seed + 1);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double* r = pool.row(i % pool.size());
      std::vector<double> row(r, r + d);
      for (double& v : row) v = std::round(v * 8.0) / 8.0;
      rows.push_back(std::move(row));
    }
    families.push_back({"duplicate-heavy", testing::MakeDataset(rows)});
  }
  {
    const data::Dataset base = data::GenerateUniform(n, d, seed + 2);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double* r = base.row(i);
      std::vector<double> row(r, r + d);
      row[0] = 0.5;
      rows.push_back(std::move(row));
    }
    families.push_back({"constant-column", testing::MakeDataset(rows)});
  }
  {
    // Magnitudes straddling the denormal range: tiny * tiny products
    // denormalize, and mixed-magnitude accumulation is where altered
    // operation order or fused rounding would show first.
    Rng rng(seed + 3);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    const double scales[] = {1e-300, 5e-324, 1e-160, 1.0, 1e3};
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> row(d);
      for (size_t j = 0; j < d; ++j) {
        row[j] = rng.Uniform() * scales[(i + j) % 5];
      }
      rows.push_back(std::move(row));
    }
    families.push_back({"denormal-adjacent", testing::MakeDataset(rows)});
  }
  return families;
}

/// Probe functions stressing the tie order: every axis (zero weights), the
/// diagonal, and random draws.
std::vector<LinearFunction> ProbeFunctions(size_t d, uint64_t seed) {
  std::vector<LinearFunction> funcs;
  for (size_t axis = 0; axis < d; ++axis) {
    geometry::Vec w(d, 0.0);
    w[axis] = 1.0;
    funcs.emplace_back(std::move(w));
  }
  funcs.emplace_back(geometry::Vec(d, 1.0));
  Rng rng(seed);
  for (int i = 0; i < 6; ++i) {
    funcs.emplace_back(rng.UnitWeightVector(static_cast<int>(d)));
  }
  return funcs;
}

TEST(ScoreKernelTest, ScalarBlockedMatchesRowLoopBitExactly) {
  for (size_t d : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    for (const Family& family : Families(300, d, 17)) {
      const data::ColumnBlocks blocks = MustBuild(family.data);
      std::vector<double> buf(data::ColumnBlocks::kBlockRows);
      for (const LinearFunction& f : ProbeFunctions(d, 29)) {
        for (size_t b = 0; b < blocks.num_blocks(); ++b) {
          ScoreBlockScalar(f.weights().data(), d, blocks.block(b),
                           buf.data());
          for (size_t lane = 0; lane < blocks.block_rows(b); ++lane) {
            const size_t i = b * data::ColumnBlocks::kBlockRows + lane;
            EXPECT_EQ(buf[lane], f.Score(family.data.row(i)))
                << family.name << " d=" << d << " row " << i;
          }
        }
      }
    }
  }
}

TEST(ScoreKernelTest, SimdMatchesScalarBitExactly) {
  std::vector<double> simd(data::ColumnBlocks::kBlockRows);
  {
    // Probe availability once.
    const data::Dataset tiny = data::GenerateUniform(64, 2, 1);
    const data::ColumnBlocks blocks = MustBuild(tiny);
    const LinearFunction f(geometry::Vec(2, 1.0));
    if (!ScoreBlockSimd(f.weights().data(), 2, blocks.block(0),
                        simd.data())) {
      GTEST_SKIP() << "no SIMD path on this host/build";
    }
  }
  std::vector<double> scalar(data::ColumnBlocks::kBlockRows);
  for (size_t d : {size_t{1}, size_t{3}, size_t{8}}) {
    for (const Family& family : Families(300, d, 23)) {
      const data::ColumnBlocks blocks = MustBuild(family.data);
      for (const LinearFunction& f : ProbeFunctions(d, 31)) {
        for (size_t b = 0; b < blocks.num_blocks(); ++b) {
          ScoreBlockScalar(f.weights().data(), d, blocks.block(b),
                           scalar.data());
          ASSERT_TRUE(ScoreBlockSimd(f.weights().data(), d, blocks.block(b),
                                     simd.data()));
          for (size_t lane = 0; lane < data::ColumnBlocks::kBlockRows;
               ++lane) {
            EXPECT_EQ(simd[lane], scalar[lane])
                << family.name << " d=" << d << " block " << b << " lane "
                << lane;
          }
        }
      }
    }
  }
}

TEST(ScoreKernelTest, ScoreAllMatchesRowLoopIncludingTail) {
  const data::Dataset ds = data::GenerateUniform(100, 3, 7);  // partial tail
  const data::ColumnBlocks blocks = MustBuild(ds);
  for (const LinearFunction& f : ProbeFunctions(3, 41)) {
    std::vector<double> out(ds.size());
    ScoreAll(f, blocks, out.data());
    for (size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(out[i], f.Score(ds.row(i))) << "row " << i;
    }
  }
}

TEST(ScoreKernelTest, TopKScanMatchesTopKOnEveryFamily) {
  for (const Family& family : Families(300, 3, 47)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    const size_t n = family.data.size();
    for (const LinearFunction& f : ProbeFunctions(3, 53)) {
      for (size_t k : {size_t{1}, size_t{3}, n / 2, n, n + 10}) {
        EXPECT_EQ(TopKScan(blocks, f, k), TopK(family.data, f, k))
            << family.name << " k=" << k;
        EXPECT_EQ(TopK(family.data, f, k, &blocks), TopK(family.data, f, k))
            << family.name << " k=" << k;
        EXPECT_EQ(TopKSet(family.data, f, k, &blocks),
                  TopKSet(family.data, f, k))
            << family.name << " k=" << k;
      }
    }
  }
}

TEST(ScoreKernelTest, MaxScoreAndCountOutrankingMatchLegacyFolds) {
  for (const Family& family : Families(300, 4, 59)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    const size_t n = family.data.size();
    for (const LinearFunction& f : ProbeFunctions(4, 61)) {
      double best = f.Score(family.data.row(0));
      for (size_t i = 1; i < n; ++i) {
        best = std::max(best, f.Score(family.data.row(i)));
      }
      EXPECT_EQ(MaxScore(blocks, f), best) << family.name;
      for (int32_t item : {0, 7, static_cast<int32_t>(n) - 1}) {
        EXPECT_EQ(RankOf(family.data, f, item, &blocks),
                  RankOf(family.data, f, item))
            << family.name << " item " << item;
      }
      const std::vector<int32_t> subset = {2, 5,
                                           static_cast<int32_t>(n) - 3};
      EXPECT_EQ(MinRankOfSubset(family.data, f, subset, &blocks),
                MinRankOfSubset(family.data, f, subset))
          << family.name;
    }
  }
}

TEST(ScoreKernelTest, MaxScoreIgnoresNaNLikeTheLegacyFold) {
  // The eval metrics fold with std::max, which never lets a NaN win; the
  // kernel's MaxScore must agree on unvalidated data (Dataset construction
  // does not enforce finiteness — CheckFinite is a separate gate).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const data::Dataset ds =
      testing::MakeDataset({{nan}, {0.5}, {0.2}, {nan}, {0.4}});
  const data::ColumnBlocks blocks = MustBuild(ds);
  const LinearFunction f(geometry::Vec{1.0});
  EXPECT_EQ(MaxScore(blocks, f), 0.5);
  const data::Dataset all_nan = testing::MakeDataset({{nan}, {nan}});
  EXPECT_EQ(MaxScore(MustBuild(all_nan), f),
            -std::numeric_limits<double>::infinity());
}

TEST(ScoreKernelTest, ThresholdAlgorithmDenseScanEscapeIsBitIdentical) {
  for (const Family& family : Families(400, 3, 67)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    ThresholdAlgorithmIndex plain(family.data);
    ThresholdAlgorithmIndex mirrored(family.data, &blocks);
    const size_t n = family.data.size();
    for (const LinearFunction& f : ProbeFunctions(3, 71)) {
      // Spans both sides of the dense-scan threshold (k * 4 >= n).
      for (size_t k : {size_t{2}, n / 8, n / 4, n / 2, n}) {
        EXPECT_EQ(mirrored.TopK(f, k), plain.TopK(f, k))
            << family.name << " k=" << k;
      }
    }
  }
}

TEST(ScoreKernelTest, AngularSweepInitialOrderMatchesWithMirror) {
  for (const Family& family : Families(300, 2, 73)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    const core::AngularSweep plain(family.data);
    const core::AngularSweep mirrored(family.data, &blocks);
    EXPECT_EQ(mirrored.InitialOrder(), plain.InitialOrder()) << family.name;
  }
}

/// Consumer equivalence, engine-vs-direct style: every routed solver and
/// evaluator must produce identical output with and without the mirror —
/// with and without a skyband index, across thread counts.
TEST(ScoreKernelTest, SolversAreBitIdenticalWithAndWithoutMirror) {
  for (const Family& family : Families(300, 3, 79)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    const size_t k = 12;

    // MDRC (threads 1 and 4, fresh private corner caches per run). The
    // constant-column family is degenerate by design and exhausts any node
    // budget; cap it low — the contract then is that the mirrored solve
    // fails (or succeeds) exactly like the plain one.
    for (size_t threads : {size_t{1}, size_t{4}}) {
      core::MdrcOptions options;
      options.threads = threads;
      options.max_nodes = 20000;
      core::MdrcStats plain_stats;
      core::MdrcStats mirrored_stats;
      Result<std::vector<int32_t>> plain =
          core::SolveMdrc(family.data, k, options, &plain_stats);
      Result<std::vector<int32_t>> mirrored = core::SolveMdrc(
          family.data, k, options, &mirrored_stats, {}, nullptr, nullptr,
          &blocks);
      ASSERT_EQ(plain.status().code(), mirrored.status().code())
          << family.name;
      if (!plain.ok()) continue;
      EXPECT_EQ(*mirrored, *plain) << family.name << " threads=" << threads;
      EXPECT_EQ(mirrored_stats.nodes, plain_stats.nodes) << family.name;
      EXPECT_EQ(mirrored_stats.leaves, plain_stats.leaves) << family.name;
    }

    // K-SETr (serial and parallel draws).
    for (size_t threads : {size_t{1}, size_t{4}}) {
      core::KSetSamplerOptions options;
      options.termination_count = 40;
      options.max_samples = 4000;
      options.threads = threads;
      Result<core::KSetSampleResult> plain =
          core::SampleKSets(family.data, k, options);
      Result<core::KSetSampleResult> mirrored =
          core::SampleKSets(family.data, k, options, {}, nullptr, &blocks);
      ASSERT_TRUE(plain.ok());
      ASSERT_TRUE(mirrored.ok());
      EXPECT_EQ(mirrored->samples_drawn, plain->samples_drawn)
          << family.name;
      ASSERT_EQ(mirrored->ksets.size(), plain->ksets.size()) << family.name;
      for (size_t i = 0; i < plain->ksets.size(); ++i) {
        EXPECT_EQ(mirrored->ksets.sets()[i].ids, plain->ksets.sets()[i].ids);
      }
    }

    // Sampled evaluator, with and without a (forced) skyband index, serial
    // and parallel.
    const std::vector<int32_t> subset =
        TopKSet(family.data, LinearFunction(geometry::Vec(3, 1.0)), k);
    core::CandidateIndexOptions force;
    force.min_dataset_size = 0;
    force.max_band_fraction = 1.0;
    force.precheck_sample = 0;
    force.budget_slack_per_tuple = 0;
    Result<core::CandidateIndex::Outcome> outcome =
        core::CandidateIndex::Create(family.data, k, force);
    ASSERT_TRUE(outcome.ok());
    ASSERT_NE(outcome->index, nullptr);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      core::SampledRegretOptions options;
      options.num_functions = 300;
      options.threads = threads;
      Result<int64_t> plain = core::SampledRankRegretEstimate(
          family.data, subset, options);
      Result<int64_t> mirrored = core::SampledRankRegretEstimate(
          family.data, subset, options, {}, nullptr, nullptr, &blocks);
      Result<int64_t> banded = core::SampledRankRegretEstimate(
          family.data, subset, options, {}, outcome->index.get(), nullptr,
          &blocks);
      ASSERT_TRUE(plain.ok());
      ASSERT_TRUE(mirrored.ok());
      ASSERT_TRUE(banded.ok());
      EXPECT_EQ(*mirrored, *plain) << family.name << " threads=" << threads;
      EXPECT_EQ(*banded, *plain) << family.name << " threads=" << threads;
    }

  }
}

/// Exact within-k certificate via k-set enumeration — tiny n, the
/// enumeration solves O(|S| k n) LPs (its documented scaling limit).
TEST(ScoreKernelTest, ExactWithinKCertificateMatchesWithMirror) {
  for (const Family& family : Families(60, 3, 109)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    const size_t k = 4;
    const std::vector<int32_t> subset =
        TopKSet(family.data, LinearFunction(geometry::Vec(3, 1.0)), k);
    Result<eval::RankRegretCertificate> plain_cert =
        eval::ExactRankRegretWithinK(family.data, subset, k);
    Result<eval::RankRegretCertificate> mirrored_cert =
        eval::ExactRankRegretWithinK(family.data, subset, k, 0, nullptr,
                                     &blocks);
    // Tie-saturated families can defeat the enumeration's seeding; the
    // contract then is that both paths fail identically.
    ASSERT_EQ(plain_cert.status().code(), mirrored_cert.status().code())
        << family.name;
    if (!plain_cert.ok()) continue;
    EXPECT_EQ(mirrored_cert->within_k, plain_cert->within_k) << family.name;
    EXPECT_EQ(mirrored_cert->witness_rank, plain_cert->witness_rank);
    EXPECT_EQ(mirrored_cert->witness_weights, plain_cert->witness_weights);
  }
}

TEST(ScoreKernelTest, Solve2dRrrIsBitIdenticalWithMirror) {
  for (const Family& family : Families(250, 2, 83)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    for (size_t k : {size_t{1}, size_t{10}}) {
      Result<std::vector<int32_t>> plain = core::Solve2dRrr(family.data, k);
      Result<std::vector<int32_t>> mirrored = core::Solve2dRrr(
          family.data, k, {}, {}, nullptr, nullptr, &blocks);
      ASSERT_TRUE(plain.ok()) << family.name;
      ASSERT_TRUE(mirrored.ok()) << family.name;
      EXPECT_EQ(*mirrored, *plain) << family.name << " k=" << k;
    }
  }
}

/// The engine hands the shared mirror to every query; its results must
/// match the legacy direct calls (no mirror, no shared caches) exactly.
TEST(ScoreKernelTest, EngineMatchesDirectSolvers) {
  const data::Dataset ds = data::GenerateUniform(400, 3, 97);
  Result<std::shared_ptr<core::RrrEngine>> engine =
      core::RrrEngine::Create(data::Dataset(ds));
  ASSERT_TRUE(engine.ok());
  const size_t k = 15;

  core::QueryOptions query;
  query.algorithm = core::Algorithm::kMdRc;
  Result<core::QueryResult> via_engine = (*engine)->Solve(k, query);
  ASSERT_TRUE(via_engine.ok());
  EXPECT_TRUE(via_engine->diagnostics.columnar_kernel);
  Result<std::vector<int32_t>> direct = core::SolveMdrc(ds, k);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine->representative, *direct);

  Result<core::EvalReport> report =
      (*engine)->Evaluate(via_engine->representative, k);
  ASSERT_TRUE(report.ok());
  core::SampledRegretOptions sampled;  // engine defaults: 10k functions
  Result<int64_t> direct_regret = core::SampledRankRegretEstimate(
      ds, via_engine->representative, sampled);
  ASSERT_TRUE(direct_regret.ok());
  EXPECT_EQ(report->rank_regret, *direct_regret);
}

/// eval::Evaluate and eval::SampledRegretRatio now route their full scans
/// through an internally built mirror; their numbers must equal a literal
/// re-implementation of the legacy row loops, draw for draw.
TEST(ScoreKernelTest, EvalMetricsMatchLegacyLoops) {
  const data::Dataset ds = data::GenerateUniform(500, 4, 101);
  const std::vector<int32_t> subset =
      TopKSet(ds, LinearFunction(geometry::Vec(4, 1.0)), 10);

  eval::EvaluateOptions options;
  options.k = 10;
  options.num_functions = 200;
  Result<eval::EvaluationReport> report =
      eval::Evaluate(ds, subset, options);
  ASSERT_TRUE(report.ok());

  // Legacy loops, replayed with the identical Rng draw sequence.
  Rng rng(options.seed);
  int64_t rank_regret = 0;
  double ratio = 0.0;
  for (size_t s = 0; s < options.num_functions; ++s) {
    const LinearFunction f(rng.UnitWeightVector(4));
    rank_regret = std::max(rank_regret, MinRankOfSubset(ds, f, subset));
    double best_all = 0.0;
    for (size_t i = 0; i < ds.size(); ++i) {
      best_all = std::max(best_all, f.Score(ds.row(i)));
    }
    if (best_all > 0.0) {
      double best_subset = 0.0;
      for (int32_t id : subset) {
        best_subset =
            std::max(best_subset, f.Score(ds.row(static_cast<size_t>(id))));
      }
      ratio = std::max(ratio, (best_all - best_subset) / best_all);
    }
  }
  EXPECT_EQ(report->rank_regret, rank_regret);
  EXPECT_EQ(report->regret_ratio, ratio);

  eval::RegretRatioOptions rr_options;
  rr_options.num_functions = 200;
  Result<double> rr = eval::SampledRegretRatio(ds, subset, rr_options);
  ASSERT_TRUE(rr.ok());
  Rng rr_rng(rr_options.seed);
  double rr_legacy = 0.0;
  for (size_t s = 0; s < rr_options.num_functions; ++s) {
    const LinearFunction f(rr_rng.UnitWeightVector(4));
    double best_all = 0.0;
    for (size_t i = 0; i < ds.size(); ++i) {
      best_all = std::max(best_all, f.Score(ds.row(i)));
    }
    if (best_all <= 0.0) continue;
    double best_subset = 0.0;
    for (int32_t id : subset) {
      best_subset =
          std::max(best_subset, f.Score(ds.row(static_cast<size_t>(id))));
    }
    rr_legacy = std::max(rr_legacy, (best_all - best_subset) / best_all);
  }
  EXPECT_EQ(*rr, rr_legacy);
}

/// The CandidateIndex build (sum order via the kernel) and its band-blocked
/// MinRankOfSubset must agree with the no-mirror build exactly.
TEST(ScoreKernelTest, CandidateIndexBuildMatchesWithMirror) {
  for (const Family& family : Families(300, 3, 103)) {
    const data::ColumnBlocks blocks = MustBuild(family.data);
    core::CandidateIndexOptions force;
    force.min_dataset_size = 0;
    force.max_band_fraction = 1.0;
    force.precheck_sample = 0;
    force.budget_slack_per_tuple = 0;
    const size_t k = 9;
    Result<core::CandidateIndex::Outcome> plain =
        core::CandidateIndex::Create(family.data, k, force);
    Result<core::CandidateIndex::Outcome> mirrored =
        core::CandidateIndex::Create(family.data, k, force, {}, nullptr,
                                     &blocks);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(mirrored.ok());
    ASSERT_NE(plain->index, nullptr);
    ASSERT_NE(mirrored->index, nullptr);
    EXPECT_EQ(mirrored->index->band_ids(), plain->index->band_ids())
        << family.name;
    for (const LinearFunction& f : ProbeFunctions(3, 107)) {
      const std::vector<int32_t> subset = {1, 4, 11};
      size_t fallbacks = 0;
      EXPECT_EQ(
          mirrored->index->MinRankOfSubset(f, subset, &fallbacks, &blocks),
          MinRankOfSubset(family.data, f, subset))
          << family.name;
    }
  }
}

/// Dynamic-layer mirrors: a BuildAppended mirror (base tiles memcpy'd, tail
/// transposed, including partial last tiles) and a WithoutRow masked mirror
/// (dead lanes skipped via the validity mask) must be bit-identical to a
/// FRESH dense mirror of the same rows on every kernel entry point — which
/// also pins scalar/blocked/SIMD agreement, since each entry point
/// dispatches the same ScoreBlock on both mirrors.
TEST(ScoreKernelTest, AppendedMirrorMatchesFreshDenseMirror) {
  // 150 base rows = two full tiles + a 22-lane partial; appends first fill
  // the partial tile, then cross into new ones.
  for (size_t appended : {size_t{1}, size_t{41}, size_t{64}, size_t{107}}) {
    for (const Family& family : Families(150 + appended, 3, 113)) {
      std::vector<std::vector<double>> rows;
      for (size_t i = 0; i < family.data.size(); ++i) {
        const double* r = family.data.row(i);
        rows.emplace_back(r, r + 3);
      }
      const data::Dataset base_data = testing::MakeDataset(
          std::vector<std::vector<double>>(rows.begin(), rows.end() - appended));
      const data::ColumnBlocks base = MustBuild(base_data);
      Result<data::ColumnBlocks> grown =
          data::ColumnBlocks::BuildAppended(base, family.data);
      ASSERT_TRUE(grown.ok()) << grown.status().ToString();
      const data::ColumnBlocks fresh = MustBuild(family.data);
      const size_t n = family.data.size();
      ASSERT_EQ(grown->rows(), n);

      for (const LinearFunction& f : ProbeFunctions(3, 127)) {
        std::vector<double> got(n);
        std::vector<double> want(n);
        ScoreAll(f, *grown, got.data());
        ScoreAll(f, fresh, want.data());
        EXPECT_EQ(got, want) << family.name << " appended=" << appended;
        for (size_t k : {size_t{1}, size_t{7}, n}) {
          EXPECT_EQ(TopKScan(*grown, f, k), TopKScan(fresh, f, k))
              << family.name << " k=" << k;
        }
        EXPECT_EQ(MaxScore(*grown, f), MaxScore(fresh, f)) << family.name;
        for (int32_t id : {0, static_cast<int32_t>(n) - 1}) {
          const double score = f.Score(family.data.row(id));
          EXPECT_EQ(CountOutranking(*grown, f, score, id),
                    CountOutranking(fresh, f, score, id))
              << family.name << " id=" << id;
        }
      }
    }
  }
}

TEST(ScoreKernelTest, MaskedMirrorMatchesFreshDenseMirror) {
  for (const Family& family : Families(150, 3, 131)) {
    std::vector<std::vector<double>> rows;
    for (size_t i = 0; i < family.data.size(); ++i) {
      const double* r = family.data.row(i);
      rows.emplace_back(r, r + 3);
    }
    // Delete a spread of rows one at a time (first lane, mid-tile lanes,
    // the partial tail), re-masking the surviving mirror at each step.
    data::ColumnBlocks masked = MustBuild(family.data);
    std::vector<data::Dataset> keep_alive;  // masked mirrors point at these
    keep_alive.reserve(8);
    for (size_t victim : {size_t{0}, size_t{62}, size_t{70}, size_t{100},
                          size_t{140}, size_t{3}}) {
      rows.erase(rows.begin() + static_cast<int64_t>(victim));
      keep_alive.push_back(testing::MakeDataset(rows));
      Result<data::ColumnBlocks> next =
          masked.WithoutRow(&keep_alive.back(), victim);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      masked = std::move(*next);
    }
    ASSERT_TRUE(masked.masked());
    const data::Dataset& compacted = keep_alive.back();
    const data::ColumnBlocks fresh = MustBuild(compacted);
    const size_t n = compacted.size();
    ASSERT_EQ(masked.rows(), n);

    for (const LinearFunction& f : ProbeFunctions(3, 137)) {
      std::vector<double> got(n);
      std::vector<double> want(n);
      ScoreAll(f, masked, got.data());
      ScoreAll(f, fresh, want.data());
      EXPECT_EQ(got, want) << family.name;
      for (size_t k : {size_t{1}, size_t{9}, n / 2, n}) {
        EXPECT_EQ(TopKScan(masked, f, k), TopKScan(fresh, f, k))
            << family.name << " k=" << k;
        EXPECT_EQ(TopKScan(masked, f, k), TopK(compacted, f, k))
            << family.name << " k=" << k;
      }
      EXPECT_EQ(MaxScore(masked, f), MaxScore(fresh, f)) << family.name;
      for (int32_t id : {0, 17, static_cast<int32_t>(n) - 1}) {
        const double score = f.Score(compacted.row(id));
        EXPECT_EQ(CountOutranking(masked, f, score, id),
                  CountOutranking(fresh, f, score, id))
            << family.name << " id=" << id;
      }
    }

    // And appending on top of a masked base keeps the contract: new rows
    // take the lanes after the (partially dead) base tiles.
    std::vector<std::vector<double>> grown_rows = rows;
    const data::Dataset extra = data::GenerateUniform(23, 3, 139);
    for (size_t i = 0; i < extra.size(); ++i) {
      const double* r = extra.row(i);
      grown_rows.emplace_back(r, r + 3);
    }
    const data::Dataset grown_data = testing::MakeDataset(grown_rows);
    Result<data::ColumnBlocks> grown =
        data::ColumnBlocks::BuildAppended(masked, grown_data);
    ASSERT_TRUE(grown.ok()) << grown.status().ToString();
    const data::ColumnBlocks grown_fresh = MustBuild(grown_data);
    for (const LinearFunction& f : ProbeFunctions(3, 149)) {
      std::vector<double> got(grown_data.size());
      std::vector<double> want(grown_data.size());
      ScoreAll(f, *grown, got.data());
      ScoreAll(f, grown_fresh, want.data());
      EXPECT_EQ(got, want) << family.name;
      EXPECT_EQ(TopKScan(*grown, f, 11), TopKScan(grown_fresh, f, 11))
          << family.name;
    }
  }
}

}  // namespace
}  // namespace topk
}  // namespace rrr
