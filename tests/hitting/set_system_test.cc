#include "hitting/set_system.h"

#include <gtest/gtest.h>

namespace rrr {
namespace hitting {
namespace {

TEST(SetSystemTest, UniverseIsSortedUnique) {
  SetSystem s{{{3, 1}, {1, 5}, {7}}};
  EXPECT_EQ(s.Universe(), (std::vector<int32_t>{1, 3, 5, 7}));
}

TEST(SetSystemTest, EmptySystemUniverse) {
  SetSystem s;
  EXPECT_TRUE(s.Universe().empty());
  EXPECT_TRUE(s.IsHit({}));
}

TEST(SetSystemTest, IsHitDetectsCoverage) {
  SetSystem s{{{1, 2}, {3, 4}, {2, 3}}};
  EXPECT_TRUE(s.IsHit({2, 3}));
  EXPECT_TRUE(s.IsHit({1, 3}));
  EXPECT_FALSE(s.IsHit({1, 4}));  // misses {2, 3}? no: 1 hits set0, 4 hits
                                  // set1, neither hits {2,3}
  EXPECT_FALSE(s.IsHit({}));
  EXPECT_FALSE(s.IsHit({99}));
}

TEST(SetSystemTest, FirstMissedPointsAtUnhitSet) {
  SetSystem s{{{1}, {2}, {3}}};
  EXPECT_EQ(s.FirstMissed({1, 3}), 1);
  EXPECT_EQ(s.FirstMissed({1, 2, 3}), -1);
  EXPECT_EQ(s.FirstMissed({}), 0);
}

TEST(SetSystemTest, EmptySetIsNeverHit) {
  SetSystem s{{{1}, {}}};
  EXPECT_EQ(s.FirstMissed({1}), 1);
}

}  // namespace
}  // namespace hitting
}  // namespace rrr
