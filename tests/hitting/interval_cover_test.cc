#include "hitting/interval_cover.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace rrr {
namespace hitting {
namespace {

/// True iff the union of the selected intervals covers [lo, hi].
bool Covers(const std::vector<Interval>& intervals,
            const std::vector<int32_t>& chosen, double lo, double hi) {
  std::vector<std::pair<double, double>> segs;
  for (int32_t id : chosen) {
    for (const auto& iv : intervals) {
      if (iv.id == id) segs.push_back({iv.begin, iv.end});
    }
  }
  std::sort(segs.begin(), segs.end());
  double reach = lo;
  for (const auto& [b, e] : segs) {
    if (b > reach + 1e-9) return false;
    reach = std::max(reach, e);
    if (reach >= hi - 1e-9) return true;
  }
  return reach >= hi - 1e-9;
}

TEST(CoverLineTest, SingleSpanningInterval) {
  const std::vector<Interval> ivs = {{0.0, 1.0, 42}};
  for (CoverStrategy strat :
       {CoverStrategy::kSweep, CoverStrategy::kGreedyMaxCoverage}) {
    Result<std::vector<int32_t>> cover = CoverLine(ivs, 0.0, 1.0, strat);
    ASSERT_TRUE(cover.ok());
    EXPECT_EQ(*cover, (std::vector<int32_t>{42}));
  }
}

TEST(CoverLineTest, ChainOfThree) {
  const std::vector<Interval> ivs = {
      {0.0, 0.4, 1}, {0.3, 0.7, 2}, {0.6, 1.0, 3}};
  for (CoverStrategy strat :
       {CoverStrategy::kSweep, CoverStrategy::kGreedyMaxCoverage}) {
    Result<std::vector<int32_t>> cover = CoverLine(ivs, 0.0, 1.0, strat);
    ASSERT_TRUE(cover.ok());
    EXPECT_EQ(cover->size(), 3u);
    EXPECT_TRUE(Covers(ivs, *cover, 0.0, 1.0));
  }
}

TEST(CoverLineTest, SweepPrefersFewerIntervals) {
  // A long interval makes 1 suffice even with decoys present.
  const std::vector<Interval> ivs = {
      {0.0, 1.0, 9}, {0.0, 0.5, 1}, {0.5, 1.0, 2}};
  Result<std::vector<int32_t>> cover = CoverLine(ivs, 0.0, 1.0);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(*cover, (std::vector<int32_t>{9}));
}

TEST(CoverLineTest, SweepIsOptimalWhereMaxCoverageIsNot) {
  // DESIGN.md's counterexample: C = [2, 8] has max coverage but forces a
  // 3-interval solution; A + B alone cover optimally with 2.
  const std::vector<Interval> ivs = {
      {0.0, 5.1, 1}, {4.9, 10.0, 2}, {2.0, 8.0, 3}};
  Result<std::vector<int32_t>> sweep =
      CoverLine(ivs, 0.0, 10.0, CoverStrategy::kSweep);
  Result<std::vector<int32_t>> greedy =
      CoverLine(ivs, 0.0, 10.0, CoverStrategy::kGreedyMaxCoverage);
  ASSERT_TRUE(sweep.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(sweep->size(), 2u);
  EXPECT_EQ(greedy->size(), 3u);
  EXPECT_TRUE(Covers(ivs, *sweep, 0.0, 10.0));
  EXPECT_TRUE(Covers(ivs, *greedy, 0.0, 10.0));
}

TEST(CoverLineTest, GapIsDetected) {
  const std::vector<Interval> ivs = {{0.0, 0.4, 1}, {0.6, 1.0, 2}};
  for (CoverStrategy strat :
       {CoverStrategy::kSweep, CoverStrategy::kGreedyMaxCoverage}) {
    Result<std::vector<int32_t>> cover = CoverLine(ivs, 0.0, 1.0, strat);
    EXPECT_FALSE(cover.ok());
    EXPECT_EQ(cover.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(CoverLineTest, MissingLeftEdgeIsDetected) {
  const std::vector<Interval> ivs = {{0.2, 1.0, 1}};
  EXPECT_FALSE(CoverLine(ivs, 0.0, 1.0).ok());
}

TEST(CoverLineTest, PointSegment) {
  const std::vector<Interval> ivs = {{0.0, 0.4, 1}, {0.4, 1.0, 2}};
  Result<std::vector<int32_t>> cover = CoverLine(ivs, 0.4, 0.4);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 1u);
}

TEST(CoverLineTest, RejectsInvertedSegment) {
  EXPECT_FALSE(CoverLine({}, 1.0, 0.0).ok());
}

TEST(CoverLineTest, TouchingEndpointsCount) {
  // Intervals that merely touch must chain.
  const std::vector<Interval> ivs = {{0.0, 0.5, 1}, {0.5, 1.0, 2}};
  Result<std::vector<int32_t>> cover = CoverLine(ivs, 0.0, 1.0);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->size(), 2u);
}

class CoverRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverRandomTest, BothStrategiesCoverAndSweepIsMinimal) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int rep = 0; rep < 20; ++rep) {
    // Build a guaranteed-coverable family: a random chain plus noise.
    std::vector<Interval> ivs;
    double reach = 0.0;
    int32_t id = 0;
    while (reach < 1.0) {
      const double b = std::max(0.0, reach - rng.Uniform(0.0, 0.1));
      const double e = reach + rng.Uniform(0.05, 0.3);
      ivs.push_back({b, e, id++});
      reach = e;
    }
    for (int noise = 0; noise < 10; ++noise) {
      const double b = rng.Uniform(0.0, 0.9);
      ivs.push_back({b, b + rng.Uniform(0.01, 0.4), id++});
    }
    Result<std::vector<int32_t>> sweep =
        CoverLine(ivs, 0.0, 1.0, CoverStrategy::kSweep);
    Result<std::vector<int32_t>> greedy =
        CoverLine(ivs, 0.0, 1.0, CoverStrategy::kGreedyMaxCoverage);
    ASSERT_TRUE(sweep.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_TRUE(Covers(ivs, *sweep, 0.0, 1.0));
    EXPECT_TRUE(Covers(ivs, *greedy, 0.0, 1.0));
    // kSweep is provably optimal; the paper greedy may only tie or lose.
    EXPECT_LE(sweep->size(), greedy->size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverRandomTest, ::testing::Values(1, 2, 3));

class SweepOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(SweepOptimalityTest, SweepMatchesBruteForceMinimum) {
  // Exhaustive oracle on small instances: the sweep's cover size equals the
  // smallest subset of intervals that covers [0, 1].
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<Interval> ivs;
    double reach = 0.0;
    int32_t id = 0;
    while (reach < 1.0 && id < 6) {
      const double b = std::max(0.0, reach - rng.Uniform(0.0, 0.15));
      const double e = reach + rng.Uniform(0.2, 0.6);
      ivs.push_back({b, e, id++});
      reach = e;
    }
    while (ivs.size() < 10) {
      const double b = rng.Uniform(0.0, 0.8);
      ivs.push_back({b, b + rng.Uniform(0.05, 0.5), id++});
    }
    Result<std::vector<int32_t>> sweep = CoverLine(ivs, 0.0, 1.0);
    ASSERT_TRUE(sweep.ok());

    size_t best = ivs.size() + 1;
    for (size_t mask = 1; mask < (size_t{1} << ivs.size()); ++mask) {
      std::vector<int32_t> chosen;
      for (size_t b = 0; b < ivs.size(); ++b) {
        if (mask >> b & 1) chosen.push_back(ivs[b].id);
      }
      if (chosen.size() >= best) continue;
      if (Covers(ivs, chosen, 0.0, 1.0)) best = chosen.size();
    }
    EXPECT_EQ(sweep->size(), best) << "rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepOptimalityTest,
                         ::testing::Values(1, 2));

}  // namespace
}  // namespace hitting
}  // namespace rrr
