#include "hitting/epsnet.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "hitting/greedy.h"

namespace rrr {
namespace hitting {
namespace {

SetSystem RandomSystem(Rng* rng, int32_t universe, size_t num_sets,
                       size_t max_set_size) {
  SetSystem s;
  for (size_t i = 0; i < num_sets; ++i) {
    const size_t size = static_cast<size_t>(
        rng->UniformInt(1, static_cast<int64_t>(max_set_size)));
    std::vector<int32_t> set;
    for (size_t j = 0; j < size; ++j) {
      set.push_back(static_cast<int32_t>(rng->UniformInt(0, universe - 1)));
    }
    s.sets.push_back(std::move(set));
  }
  return s;
}

TEST(EpsNetHittingSetTest, OutputAlwaysHitsAllSets) {
  Rng rng(10);
  for (int rep = 0; rep < 20; ++rep) {
    const SetSystem s = RandomSystem(&rng, 40, 30, 6);
    EpsNetOptions opts;
    opts.seed = static_cast<uint64_t>(rep);
    Result<std::vector<int32_t>> hit = EpsNetHittingSet(s, opts);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(s.IsHit(*hit)) << "rep " << rep;
  }
}

TEST(EpsNetHittingSetTest, BothDoublingStrategiesWork) {
  Rng rng(11);
  const SetSystem s = RandomSystem(&rng, 30, 25, 5);
  for (DoublingStrategy strategy :
       {DoublingStrategy::kAllMissed, DoublingStrategy::kLightestMissed}) {
    EpsNetOptions opts;
    opts.doubling = strategy;
    Result<std::vector<int32_t>> hit = EpsNetHittingSet(s, opts);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(s.IsHit(*hit));
  }
}

TEST(EpsNetHittingSetTest, DeterministicUnderSeed) {
  Rng rng(12);
  const SetSystem s = RandomSystem(&rng, 25, 20, 4);
  EpsNetOptions opts;
  opts.seed = 99;
  Result<std::vector<int32_t>> a = EpsNetHittingSet(s, opts);
  Result<std::vector<int32_t>> b = EpsNetHittingSet(s, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(EpsNetHittingSetTest, SharedElementGivesTinySolution) {
  // Every set contains 0: the weight of 0 doubles fastest and the net
  // finds it; the output must stay small (not the whole universe).
  SetSystem s;
  for (int32_t i = 1; i <= 30; ++i) s.sets.push_back({0, i});
  Result<std::vector<int32_t>> hit = EpsNetHittingSet(s);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(s.IsHit(*hit));
  EXPECT_LE(hit->size(), 6u);
}

TEST(EpsNetHittingSetTest, SizeWithinLogFactorOfExact) {
  Rng rng(13);
  for (int rep = 0; rep < 10; ++rep) {
    const SetSystem s = RandomSystem(&rng, 20, 15, 4);
    Result<std::vector<int32_t>> net = EpsNetHittingSet(s);
    Result<std::vector<int32_t>> exact = ExactHittingSet(s);
    ASSERT_TRUE(net.ok());
    ASSERT_TRUE(exact.ok());
    // Loose multiplicative sanity bound: the BG guarantee for VC-dim 3 is
    // O(d log(d c)); 8x covers every instance this size.
    EXPECT_LE(net->size(), exact->size() * 8);
  }
}

TEST(EpsNetHittingSetTest, RejectsEmptySet) {
  SetSystem s{{{1}, {}}};
  EXPECT_FALSE(EpsNetHittingSet(s).ok());
}

TEST(EpsNetHittingSetTest, EmptySystemNeedsNothing) {
  Result<std::vector<int32_t>> hit = EpsNetHittingSet(SetSystem{});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->empty());
}

TEST(EpsNetHittingSetTest, SingleSetSingleElement) {
  SetSystem s{{{7}}};
  Result<std::vector<int32_t>> hit = EpsNetHittingSet(s);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, (std::vector<int32_t>{7}));
}

}  // namespace
}  // namespace hitting
}  // namespace rrr
