#include "hitting/greedy.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace rrr {
namespace hitting {
namespace {

/// Random set system over `universe` elements where every set is non-empty.
SetSystem RandomSystem(Rng* rng, int32_t universe, size_t num_sets,
                       size_t max_set_size) {
  SetSystem s;
  for (size_t i = 0; i < num_sets; ++i) {
    const size_t size =
        static_cast<size_t>(rng->UniformInt(1, static_cast<int64_t>(
                                                   max_set_size)));
    std::vector<int32_t> set;
    for (size_t j = 0; j < size; ++j) {
      set.push_back(static_cast<int32_t>(rng->UniformInt(0, universe - 1)));
    }
    s.sets.push_back(std::move(set));
  }
  return s;
}

TEST(GreedyHittingSetTest, SingleElementSetsForceAllOfThem) {
  SetSystem s{{{1}, {2}, {3}}};
  Result<std::vector<int32_t>> hit = GreedyHittingSet(s);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, (std::vector<int32_t>{1, 2, 3}));
}

TEST(GreedyHittingSetTest, SharedElementCollapsesToOne) {
  SetSystem s{{{1, 9}, {2, 9}, {3, 9}}};
  Result<std::vector<int32_t>> hit = GreedyHittingSet(s);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, (std::vector<int32_t>{9}));
}

TEST(GreedyHittingSetTest, OutputAlwaysHits) {
  Rng rng(1);
  for (int rep = 0; rep < 30; ++rep) {
    const SetSystem s = RandomSystem(&rng, 30, 20, 5);
    Result<std::vector<int32_t>> hit = GreedyHittingSet(s);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(s.IsHit(*hit));
  }
}

TEST(GreedyHittingSetTest, RejectsEmptySet) {
  SetSystem s{{{1}, {}}};
  EXPECT_FALSE(GreedyHittingSet(s).ok());
}

TEST(GreedyHittingSetTest, EmptySystemNeedsNothing) {
  Result<std::vector<int32_t>> hit = GreedyHittingSet(SetSystem{});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->empty());
}

TEST(GreedyHittingSetTest, DuplicateElementsWithinSetCountOnce) {
  // {5,5,5} and {6}: greedy must not over-count 5's gain.
  SetSystem s{{{5, 5, 5}, {6}}};
  Result<std::vector<int32_t>> hit = GreedyHittingSet(s);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->size(), 2u);
}

TEST(ExactHittingSetTest, FindsKnownOptimum) {
  // Greedy can be fooled; exact cannot. Classic: pairwise structure where
  // optimal = 2 ({1, 2}) but naive choices give 3.
  SetSystem s{{{1, 3}, {1, 4}, {2, 3}, {2, 4}, {1, 2}}};
  Result<std::vector<int32_t>> exact = ExactHittingSet(s);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->size(), 2u);
  EXPECT_TRUE(s.IsHit(*exact));
}

TEST(ExactHittingSetTest, NeverWorseThanGreedy) {
  Rng rng(2);
  for (int rep = 0; rep < 25; ++rep) {
    const SetSystem s = RandomSystem(&rng, 15, 12, 4);
    Result<std::vector<int32_t>> exact = ExactHittingSet(s);
    Result<std::vector<int32_t>> greedy = GreedyHittingSet(s);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_TRUE(s.IsHit(*exact));
    EXPECT_LE(exact->size(), greedy->size());
  }
}

TEST(ExactHittingSetTest, MatchesBruteForceOnTinyInstances) {
  Rng rng(3);
  for (int rep = 0; rep < 15; ++rep) {
    const SetSystem s = RandomSystem(&rng, 8, 6, 3);
    Result<std::vector<int32_t>> exact = ExactHittingSet(s);
    ASSERT_TRUE(exact.ok());
    // Brute force over all subsets of the universe.
    const std::vector<int32_t> universe = s.Universe();
    size_t best = universe.size();
    for (size_t mask = 0; mask < (size_t{1} << universe.size()); ++mask) {
      std::vector<int32_t> subset;
      for (size_t b = 0; b < universe.size(); ++b) {
        if (mask >> b & 1) subset.push_back(universe[b]);
      }
      if (s.IsHit(subset)) best = std::min(best, subset.size());
    }
    EXPECT_EQ(exact->size(), best);
  }
}

TEST(ExactHittingSetTest, NodeBudgetIsEnforced) {
  Rng rng(4);
  const SetSystem s = RandomSystem(&rng, 40, 35, 6);
  Result<std::vector<int32_t>> exact = ExactHittingSet(s, /*max_nodes=*/3);
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExactHittingSetTest, EmptySystem) {
  Result<std::vector<int32_t>> exact = ExactHittingSet(SetSystem{});
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());
}

}  // namespace
}  // namespace hitting
}  // namespace rrr
