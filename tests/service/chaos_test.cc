// Chaos suite: seeded randomized fault schedules against a live server
// under mixed SOLVE/DUAL/EVAL/APPEND traffic. The invariants are the
// whole hardening story at once:
//   - the server never hangs or crashes (watchdog + clean Stop());
//   - every SUCCESSFUL reply on the static datasets is bit-identical to
//     the fault-free oracle (degradation may slow a query, never change
//     its answer);
//   - every FAILED reply is a typed protocol error (known code=), never
//     a garbled line or a silent disconnect-without-cleanup;
//   - after the faults clear, the server drains to idle and keeps
//     serving.
// Each schedule draws its fault set (sites x policies) from a seeded rng,
// so a failing seed reproduces exactly; bump kSchedules for soak runs.

#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/random.h"
#include "service/client.h"
#include "service/server.h"

namespace rrr {
namespace service {
namespace {

constexpr int kSchedules = 20;  // acceptance floor; raise for soak runs

// Static traffic datasets (the oracle targets) and their query mix.
const char* const kRegisterS2 = "REGISTER name=s2 gen=uniform n=80 d=2 seed=31";
const char* const kRegisterS3 = "REGISTER name=s3 gen=uniform n=90 d=3 seed=47";
const char* const kRegisterDyn =
    "REGISTER name=dyn gen=uniform n=40 d=2 seed=5 dynamic=1";
const size_t kSolveKs[] = {2, 3, 4};
const size_t kDualSizes[] = {3, 5};

/// One schedule entry: a site armed with a policy spec.
struct Fault {
  std::string site;
  std::string spec;
};

/// Draws this schedule's fault set. Socket faults are listed last so the
/// admin client can arm everything over the wire before replies start
/// getting eaten. Policies derive from the schedule seed: replaying a
/// seed replays its faults.
std::vector<Fault> GenerateSchedule(uint64_t seed) {
  Rng rng(seed);
  const char* artifact_sites[] = {
      "core.artifact.candidate_index", "core.artifact.column_blocks",
      "core.artifact.skyline",         "core.artifact.corner_topk",
      "core.artifact.ta_index",
  };
  std::vector<Fault> faults;
  // 1-2 artifact faults: these must DEGRADE queries, never corrupt them.
  const int artifacts = 1 + static_cast<int>(rng.UniformInt(0, 1));
  for (int i = 0; i < artifacts; ++i) {
    const char* site = artifact_sites[rng.UniformInt(0, 4)];
    std::string spec;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        spec = "once";
        break;
      case 1:
        spec = "every-" + std::to_string(rng.UniformInt(2, 5));
        break;
      default:
        spec = "prob-0." + std::to_string(rng.UniformInt(1, 3)) + "-seed-" +
               std::to_string(seed);
        break;
    }
    faults.push_back({site, spec});
  }
  // Sometimes overload admission (typed busy) or kill a lazy compute.
  if (rng.Bernoulli(0.5)) {
    faults.push_back({"service.admission.submit",
                      "every-" + std::to_string(rng.UniformInt(3, 6)) +
                          "@resource_exhausted"});
  }
  if (rng.Bernoulli(0.3)) {
    faults.push_back({"core.lazycell.compute", "once"});
  }
  // Socket-level carnage last (see above).
  if (rng.Bernoulli(0.5)) {
    faults.push_back({"service.socket.read",
                      "prob-0.1-seed-" + std::to_string(seed + 1)});
  }
  if (rng.Bernoulli(0.5)) {
    faults.push_back({"service.socket.write",
                      "prob-0.1-seed-" + std::to_string(seed + 2)});
  }
  return faults;
}

/// Polls STATUS until `name` is READY (fails the test on FAILED).
void AwaitReady(LineClient* client, const std::string& name) {
  for (int i = 0;; ++i) {
    ASSERT_LT(i, 2000) << name << " never became READY";
    Result<Reply> reply = client->Request("STATUS name=" + name);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    const std::string* state = reply.value().Find("state");
    ASSERT_NE(state, nullptr);
    ASSERT_NE(*state, "FAILED");
    if (*state == "READY") return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Fault-free expected reply fields for the static datasets, recorded
/// over the wire so comparisons cover the full formatting path.
struct OracleBook {
  std::map<std::string, std::string> solve;  // "s2:3"  -> ids
  std::map<std::string, std::string> dual;   // "s3:5"  -> "k/ids"
  std::map<std::string, std::string> eval;   // "s2"    -> rank_regret
};

void BuildOracle(OracleBook* book) {
  FailpointRegistry::Instance().DisarmAll();
  RrrServer server(RrrServer::Options{});
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Request(kRegisterS2).ok());
  ASSERT_TRUE(client.Request(kRegisterS3).ok());
  AwaitReady(&client, "s2");
  AwaitReady(&client, "s3");
  for (const char* name : {"s2", "s3"}) {
    for (size_t k : kSolveKs) {
      Result<Reply> solved = client.Request(
          std::string("SOLVE name=") + name + " k=" + std::to_string(k));
      ASSERT_TRUE(solved.ok() && solved.value().ok);
      const std::string* ids = solved.value().Find("ids");
      ASSERT_NE(ids, nullptr);
      book->solve[std::string(name) + ":" + std::to_string(k)] = *ids;
    }
    for (size_t max_size : kDualSizes) {
      Result<Reply> dual =
          client.Request(std::string("DUAL name=") + name +
                         " max_size=" + std::to_string(max_size));
      ASSERT_TRUE(dual.ok() && dual.value().ok);
      const std::string* k = dual.value().Find("k");
      const std::string* ids = dual.value().Find("ids");
      ASSERT_NE(k, nullptr);
      ASSERT_NE(ids, nullptr);
      book->dual[std::string(name) + ":" + std::to_string(max_size)] =
          *k + "/" + *ids;
    }
    Result<Reply> eval = client.Request(
        std::string("EVAL name=") + name +
        " ids=" + book->solve[std::string(name) + ":2"] + " k=2");
    ASSERT_TRUE(eval.ok() && eval.value().ok);
    const std::string* regret = eval.value().Find("rank_regret");
    ASSERT_NE(regret, nullptr);
    book->eval[name] = *regret;
  }
  server.Stop();
}

bool IsTypedCode(const std::string& code) {
  static const std::set<std::string> kCodes = {
      "busy",          "io_error",           "internal",
      "invalid_argument", "not_found",       "failed_precondition",
      "out_of_range",  "resource_exhausted", "cancelled",
      "deadline_exceeded", "unavailable",    "already_exists",
      "unimplemented", "aborted",
  };
  return kCodes.count(code) > 0;
}

/// One driver thread's slice of a schedule: mixed traffic with retries,
/// every successful static-dataset reply checked against the oracle,
/// every failure checked for typed-ness. Violations land in `problems`.
void DriveTraffic(uint16_t port, uint64_t seed, const OracleBook& oracle,
                  int ops, Mutex* problems_mu,
                  std::vector<std::string>* problems) {
  auto report = [&](const std::string& what) {
    MutexLock lock(*problems_mu);
    problems->push_back("seed " + std::to_string(seed) + ": " + what);
  };
  Rng rng(seed);
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  policy.jitter_seed = seed;
  LineClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    report("initial connect failed");
    return;
  }
  for (int op = 0; op < ops; ++op) {
    const std::string name = rng.Bernoulli(0.5) ? "s2" : "s3";
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    std::string line;
    std::string expect_key;
    enum Verb { kSolve, kDual, kEval, kAppend, kStats };
    Verb verb;
    if (kind < 4) {
      verb = kSolve;
      const size_t k = kSolveKs[rng.UniformInt(0, 2)];
      line = "SOLVE name=" + name + " k=" + std::to_string(k);
      expect_key = name + ":" + std::to_string(k);
    } else if (kind < 6) {
      verb = kDual;
      const size_t m = kDualSizes[rng.UniformInt(0, 1)];
      line = "DUAL name=" + name + " max_size=" + std::to_string(m);
      expect_key = name + ":" + std::to_string(m);
    } else if (kind < 8) {
      verb = kEval;
      line = "EVAL name=" + name + " ids=" + oracle.solve.at(name + ":2") +
             " k=2";
      expect_key = name;
    } else if (kind < 9) {
      verb = kAppend;
      // The dynamic dataset is traffic ballast, not an oracle target (a
      // lost-reply APPEND is ambiguous by nature), so its replies only
      // need to be well-typed.
      line = "APPEND name=dyn rows=0." + std::to_string(rng.UniformInt(1, 9)) +
             ",0." + std::to_string(rng.UniformInt(1, 9));
    } else {
      verb = kStats;
    }

    if (!client.connected() && !client.Connect("127.0.0.1", port).ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (verb == kStats) {
      // STATS is multi-line; a transport fault mid-body is fine, and
      // RequestStats itself rejects a malformed body.
      if (!client.RequestStats().ok()) client.Close();
      continue;
    }
    Result<Reply> reply =
        verb == kAppend
            ? client.Request(line)  // never retried: not idempotent
            : client.RequestWithRetry(line, policy);
    if (!reply.ok()) {
      // Transport fault (socket failpoints, retry budget spent): allowed;
      // reconnect on the next loop iteration and keep driving.
      client.Close();
      continue;
    }
    if (!reply.value().ok) {
      if (!IsTypedCode(reply.value().code)) {
        report("untyped error code '" + reply.value().code + "' for " + line);
      }
      continue;
    }
    // Successful replies on the static datasets must match the oracle
    // bit-for-bit, degraded or not.
    if (verb == kSolve) {
      const std::string* ids = reply.value().Find("ids");
      if (ids == nullptr || *ids != oracle.solve.at(expect_key)) {
        report("SOLVE mismatch for " + line + ": got " +
               (ids ? *ids : "<none>") + " want " +
               oracle.solve.at(expect_key));
      }
    } else if (verb == kDual) {
      const std::string* k = reply.value().Find("k");
      const std::string* ids = reply.value().Find("ids");
      const std::string got =
          (k ? *k : "<none>") + "/" + (ids ? *ids : "<none>");
      if (got != oracle.dual.at(expect_key)) {
        report("DUAL mismatch for " + line + ": got " + got + " want " +
               oracle.dual.at(expect_key));
      }
    } else if (verb == kEval) {
      const std::string* regret = reply.value().Find("rank_regret");
      if (regret == nullptr || *regret != oracle.eval.at(expect_key)) {
        report("EVAL mismatch for " + line + ": got " +
               (regret ? *regret : "<none>") + " want " +
               oracle.eval.at(expect_key));
      }
    }
  }
}

/// Polls STATS on a fresh client (the fault set is already cleared)
/// until the admission pool reports fully drained.
void AwaitDrained(uint16_t port, uint64_t seed, Mutex* problems_mu,
                  std::vector<std::string>* problems) {
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  for (int i = 0; i < 2000; ++i) {
    Result<std::map<std::string, std::string>> stats = client.RequestStats();
    if (stats.ok() && stats.value().at("queue_depth") == "0" &&
        stats.value().at("active_queries") == "0") {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  MutexLock lock(*problems_mu);
  problems->push_back("seed " + std::to_string(seed) +
                      ": admission pool never drained");
}

TEST(Chaos, SeededFaultSchedulesNeverHangCrashOrCorrupt) {
  // Watchdog: a hang anywhere below must fail the test loudly instead of
  // eating the whole ctest budget. SIGALRM's default action terminates.
  ::alarm(600);

  OracleBook oracle;
  BuildOracle(&oracle);
  ASSERT_FALSE(oracle.solve.empty());
  Mutex problems_mu;
  std::vector<std::string> problems;

  for (int schedule = 1; schedule <= kSchedules; ++schedule) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(schedule) * 17;
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    FailpointRegistry::Instance().DisarmAll();

    RrrServer::Options options;
    options.workers = 3;
    options.queue_depth = 8;
    RrrServer server(options);
    ASSERT_TRUE(server.Start().ok());

    // Register the traffic datasets fault-free, then arm the schedule.
    {
      LineClient admin;
      ASSERT_TRUE(admin.Connect("127.0.0.1", server.port()).ok());
      ASSERT_TRUE(admin.Request(kRegisterS2).ok());
      ASSERT_TRUE(admin.Request(kRegisterS3).ok());
      ASSERT_TRUE(admin.Request(kRegisterDyn).ok());
      AwaitReady(&admin, "s2");
      AwaitReady(&admin, "s3");
      AwaitReady(&admin, "dyn");
      // Armed over the wire (the admin client retries through its own
      // socket faults). One deterministic trap: each re-Arm resets the
      // policy rng, so a prob spec whose FIRST draw injects will eat the
      // arming reply identically on every retry — when the wire path
      // livelocks like that, fall back to the in-process registry (same
      // process, same failpoints).
      RetryPolicy arm_policy;
      arm_policy.max_attempts = 6;
      arm_policy.initial_backoff_ms = 1;
      arm_policy.max_backoff_ms = 4;
      for (const Fault& fault : GenerateSchedule(seed)) {
        Result<Reply> armed = admin.RequestWithRetry(
            "FAILPOINT site=" + fault.site + " spec=" + fault.spec,
            arm_policy);
        if (armed.ok() && armed.value().ok) continue;
        if (!FailpointRegistry::Instance().Arm(fault.site, fault.spec).ok()) {
          MutexLock lock(problems_mu);
          problems.push_back("seed " + std::to_string(seed) + ": arming " +
                             fault.site + " failed");
        }
        if (!admin.connected()) {
          (void)admin.Connect("127.0.0.1", server.port());
        }
      }
    }

    std::vector<std::thread> drivers;
    for (uint64_t t = 0; t < 3; ++t) {
      drivers.emplace_back([&, t] {
        DriveTraffic(server.port(), seed * 10 + t, oracle, 16, &problems_mu,
                     &problems);
      });
    }
    for (std::thread& driver : drivers) driver.join();

    // Clear the faults over the wire, then verify the server drains to
    // idle and still answers — graceful degradation, not slow death.
    {
      LineClient admin;
      RetryPolicy clear_policy;
      clear_policy.max_attempts = 8;
      clear_policy.initial_backoff_ms = 1;
      clear_policy.max_backoff_ms = 4;
      ASSERT_TRUE(admin.Connect("127.0.0.1", server.port()).ok());
      Result<Reply> cleared =
          admin.RequestWithRetry("FAILPOINT clear=1", clear_policy);
      ASSERT_TRUE(cleared.ok() && cleared.value().ok)
          << "FAILPOINT clear failed";
    }
    FailpointRegistry::Instance().DisarmAll();  // belt and braces
    AwaitDrained(server.port(), seed, &problems_mu, &problems);
    {
      LineClient prober;
      ASSERT_TRUE(prober.Connect("127.0.0.1", server.port()).ok());
      Result<Reply> solved = prober.Request("SOLVE name=s2 k=2");
      ASSERT_TRUE(solved.ok());
      ASSERT_TRUE(solved.value().ok) << solved.value().code;
      const std::string* ids = solved.value().Find("ids");
      ASSERT_NE(ids, nullptr);
      EXPECT_EQ(*ids, oracle.solve.at("s2:2"));
    }
    server.Stop();  // full drain: joins every thread or the watchdog fires
  }

  EXPECT_TRUE(problems.empty()) << problems.size() << " violations, first: "
                                << problems.front();
  ::alarm(0);
}

}  // namespace
}  // namespace service
}  // namespace rrr
