#include "service/protocol.h"

#include <gtest/gtest.h>

#include "service/client.h"

namespace rrr {
namespace service {
namespace {

TEST(ParseCommand, UppercasesVerbAndSplitsArgs) {
  Result<Command> cmd = ParseCommand("solve name=cars k=4");
  ASSERT_TRUE(cmd.ok()) << cmd.status().ToString();
  EXPECT_EQ(cmd.value().verb, "SOLVE");
  ASSERT_NE(cmd.value().Find("name"), nullptr);
  EXPECT_EQ(*cmd.value().Find("name"), "cars");
  ASSERT_NE(cmd.value().Find("k"), nullptr);
  EXPECT_EQ(*cmd.value().Find("k"), "4");
}

TEST(ParseCommand, RejectsEmptyAndKeyWithoutValue) {
  EXPECT_FALSE(ParseCommand("").ok());
  EXPECT_FALSE(ParseCommand("   ").ok());
  EXPECT_FALSE(ParseCommand("SOLVE naked").ok());
}

TEST(ParseCommand, LaterDuplicateWins) {
  Result<Command> cmd = ParseCommand("SOLVE k=2 k=9");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(*cmd.value().Find("k"), "9");
}

TEST(ParseCommand, GetUintRejectsJunk) {
  Result<Command> cmd = ParseCommand("SOLVE k=abc");
  ASSERT_TRUE(cmd.ok());
  EXPECT_FALSE(cmd.value().GetUint("k").ok());
  EXPECT_FALSE(cmd.value().GetUint("missing").ok());
  Result<uint64_t> fallback = cmd.value().GetUintOr("missing", 7);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback.value(), 7u);
}

TEST(Format, OkAndErrRoundTripThroughClientParser) {
  const std::string ok_line =
      FormatOk({{"k", "3"}, {"ids", "1,2,3"}});
  Result<Reply> ok_reply = ParseReply(ok_line);
  ASSERT_TRUE(ok_reply.ok());
  EXPECT_TRUE(ok_reply.value().ok);
  EXPECT_EQ(*ok_reply.value().Find("ids"), "1,2,3");

  const std::string err_line =
      FormatErr(Status::NotFound("no such dataset: cars"));
  Result<Reply> err_reply = ParseReply(err_line);
  ASSERT_TRUE(err_reply.ok());
  EXPECT_FALSE(err_reply.value().ok);
  EXPECT_EQ(err_reply.value().code, "not_found");
  EXPECT_EQ(err_reply.value().msg, "no such dataset: cars");
}

TEST(Format, BusyUsesDedicatedCode) {
  Result<Reply> reply = ParseReply(FormatBusy("queue full"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply.value().ok);
  EXPECT_EQ(reply.value().code, "busy");
}

TEST(Format, WireCodeIsSnakeCase) {
  EXPECT_EQ(WireCode(StatusCode::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(WireCode(StatusCode::kResourceExhausted), "resource_exhausted");
  EXPECT_EQ(WireCode(StatusCode::kInvalidArgument), "invalid_argument");
}

TEST(Lists, IdsRoundTrip) {
  const std::vector<int32_t> ids = {5, -1, 42};
  Result<std::vector<int32_t>> parsed = ParseIdList(JoinIds(ids));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), ids);
  EXPECT_FALSE(ParseIdList("1,x,3").ok());
}

TEST(Lists, DoublesParse) {
  Result<std::vector<double>> parsed = ParseDoubleList("1.5,2,3e-1");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.value()[0], 1.5);
  EXPECT_DOUBLE_EQ(parsed.value()[2], 0.3);
  EXPECT_FALSE(ParseDoubleList("1.5,,2").ok());
}

}  // namespace
}  // namespace service
}  // namespace rrr
