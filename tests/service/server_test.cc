#include "service/server.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "data/generators.h"
#include "service/client.h"
#include "service/protocol.h"

namespace rrr {
namespace service {
namespace {

/// Disarms every failpoint on scope exit so one test's faults never leak
/// into the next.
struct FailpointGuard {
  FailpointGuard() { FailpointRegistry::Instance().DisarmAll(); }
  ~FailpointGuard() { FailpointRegistry::Instance().DisarmAll(); }
};

using Stats = std::map<std::string, std::string>;

/// Connects a fresh client to the test server.
void Connect(const RrrServer& server, LineClient* client) {
  ASSERT_TRUE(client->Connect("127.0.0.1", server.port()).ok());
}

/// Polls STATUS until the dataset settles; fails the test on FAILED.
void AwaitReady(LineClient* client, const std::string& name) {
  for (int i = 0; i < 2000; ++i) {
    Result<Reply> reply = client->Request("STATUS name=" + name);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply.value().ok) << reply.value().code;
    const std::string* state = reply.value().Find("state");
    ASSERT_NE(state, nullptr);
    ASSERT_NE(*state, "FAILED") << name;
    if (*state == "READY") return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << name << " never became READY";
}

/// Polls STATS until `key` satisfies `pred` (or ~10s pass).
void AwaitStat(LineClient* client, const std::string& key,
               bool (*pred)(size_t), size_t* out = nullptr) {
  for (int i = 0; i < 2000; ++i) {
    Result<Stats> stats = client->RequestStats();
    ASSERT_TRUE(stats.ok());
    const auto it = stats.value().find(key);
    if (it != stats.value().end()) {
      const size_t value = std::stoull(it->second);
      if (pred(value)) {
        if (out != nullptr) *out = value;
        return;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "stat " << key << " never satisfied predicate";
}

/// The ids the server must report for SOLVE on a uniform(n, d, seed)
/// dataset — computed through the engine directly (same defaults the
/// registry uses).
std::string DirectSolveIds(size_t n, size_t d, uint64_t seed, size_t k) {
  Result<std::shared_ptr<core::RrrEngine>> engine =
      core::RrrEngine::Create(data::GenerateUniform(n, d, seed));
  EXPECT_TRUE(engine.ok());
  Result<core::QueryResult> result = engine.value()->Solve(k);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return JoinIds(result.value().representative);
}

TEST(Server, EndToEndTwoClientsConcurrentQueriesBitIdentical) {
  RrrServer::Options options;
  options.workers = 3;
  options.queue_depth = 16;
  RrrServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  // Two clients, two distinct datasets.
  LineClient alice, bob;
  Connect(server, &alice);
  Connect(server, &bob);
  ASSERT_TRUE(
      alice.Request("REGISTER name=alpha gen=uniform n=400 d=3 seed=3")
          .ok());
  ASSERT_TRUE(
      bob.Request("REGISTER name=beta gen=uniform n=300 d=2 seed=5").ok());
  AwaitReady(&alice, "alpha");
  AwaitReady(&bob, "beta");

  // Concurrent SOLVE/DUAL/EVAL from both clients.
  std::string alice_ids, bob_ids;
  std::thread alice_thread([&] {
    Result<Reply> solve = alice.Request("SOLVE name=alpha k=4");
    if (solve.ok() && solve.value().ok &&
        solve.value().Find("ids") != nullptr) {
      alice_ids = *solve.value().Find("ids");
      Result<Reply> eval =
          alice.Request("EVAL name=alpha ids=" + alice_ids + " k=4");
      EXPECT_TRUE(eval.ok() && eval.value().ok);
      if (eval.ok() && eval.value().ok) {
        EXPECT_EQ(*eval.value().Find("within_k"), "1");
      }
    } else {
      ADD_FAILURE() << "alice SOLVE failed";
    }
  });
  std::thread bob_thread([&] {
    Result<Reply> solve = bob.Request("SOLVE name=beta k=3");
    if (solve.ok() && solve.value().ok &&
        solve.value().Find("ids") != nullptr) {
      bob_ids = *solve.value().Find("ids");
    } else {
      ADD_FAILURE() << "bob SOLVE failed";
    }
    Result<Reply> dual = bob.Request("DUAL name=beta max_size=6");
    EXPECT_TRUE(dual.ok() && dual.value().ok);
  });
  alice_thread.join();
  bob_thread.join();

  // Server answers are bit-identical to direct engine calls.
  EXPECT_EQ(alice_ids, DirectSolveIds(400, 3, 3, 4));
  EXPECT_EQ(bob_ids, DirectSolveIds(300, 2, 5, 3));

  server.Stop();
}

TEST(Server, DeadlineExceededSurfacesOnWire) {
  RrrServer::Options options;
  options.workers = 1;
  options.queue_depth = 4;
  RrrServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient blocker, victim, control;
  Connect(server, &blocker);
  Connect(server, &victim);
  Connect(server, &control);

  // Occupy the single worker, then queue a query whose deadline (which
  // starts at admission) expires while it waits.
  ASSERT_TRUE(blocker.SendLine("SLEEP ms=400").ok());
  AwaitStat(&control, "active_queries", [](size_t v) { return v >= 1; });
  Result<Reply> late = victim.Request("SLEEP ms=300 deadline_ms=1");
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(late.value().ok);
  EXPECT_EQ(late.value().code, "deadline_exceeded");
  ASSERT_TRUE(blocker.ReadLine().ok());  // drain the blocker's OK

  Result<Stats> stats = control.RequestStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(std::stoull(stats.value().at("deadline_exceeded")), 1u);
  server.Stop();
}

TEST(Server, BusyRejectionWhenQueueFull) {
  RrrServer::Options options;
  options.workers = 1;
  options.queue_depth = 0;  // nothing may wait: idle worker or busy
  RrrServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient blocker, rejected, control;
  Connect(server, &blocker);
  Connect(server, &rejected);
  Connect(server, &control);

  ASSERT_TRUE(blocker.SendLine("SLEEP ms=500").ok());
  AwaitStat(&control, "active_queries", [](size_t v) { return v >= 1; });
  Result<Reply> busy = rejected.Request("SLEEP ms=10");
  ASSERT_TRUE(busy.ok());
  EXPECT_FALSE(busy.value().ok);
  EXPECT_EQ(busy.value().code, "busy");
  ASSERT_TRUE(blocker.ReadLine().ok());

  Result<Stats> stats = control.RequestStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(std::stoull(stats.value().at("busy_rejections")), 1u);
  server.Stop();
}

TEST(Server, MemoHitsAndEvictionUnderSmallBudget) {
  RrrServer::Options options;
  options.workers = 2;
  // Small enough that the big dataset's artifacts overflow it, large
  // enough that the small dataset's do not.
  options.artifact_budget_bytes = 200 * 1024;
  RrrServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client;
  Connect(server, &client);
  ASSERT_TRUE(
      client.Request("REGISTER name=small gen=uniform n=100 d=2 seed=9")
          .ok());
  ASSERT_TRUE(
      client.Request("REGISTER name=big gen=uniform n=2000 d=4 seed=9")
          .ok());
  AwaitReady(&client, "small");
  AwaitReady(&client, "big");

  // Same query twice while under budget: the second must hit the memo.
  Result<Reply> first = client.Request("SOLVE name=small k=3");
  ASSERT_TRUE(first.ok() && first.value().ok) << first.value().msg;
  const std::string ids_before = *first.value().Find("ids");
  Result<Reply> second = client.Request("SOLVE name=small k=3");
  ASSERT_TRUE(second.ok() && second.value().ok);
  EXPECT_EQ(*second.value().Find("cached"), "1");
  EXPECT_EQ(*second.value().Find("ids"), ids_before);

  // The big dataset blows the budget; LRU eviction fires.
  Result<Reply> big = client.Request("SOLVE name=big k=3");
  ASSERT_TRUE(big.ok() && big.value().ok) << big.value().msg;
  Result<Stats> stats = client.RequestStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(std::stoull(stats.value().at("memo_hits")), 1u);
  EXPECT_GE(std::stoull(stats.value().at("evictions")), 1u);
  EXPECT_GT(std::stoull(stats.value().at("evicted_bytes")), 0u);

  // Evicted artifacts rebuild bit-identically on the next touch.
  Result<Reply> again = client.Request("SOLVE name=small k=3");
  ASSERT_TRUE(again.ok() && again.value().ok);
  EXPECT_EQ(*again.value().Find("ids"), ids_before);
  server.Stop();
}

TEST(Server, AppendKeepsInFlightQueryPinnedToItsVersion) {
  RrrServer::Options options;
  options.workers = 1;  // force the SOLVE to queue behind a SLEEP
  options.queue_depth = 4;
  RrrServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient blocker, querier, control;
  Connect(server, &blocker);
  Connect(server, &querier);
  Connect(server, &control);
  ASSERT_TRUE(
      control
          .Request(
              "REGISTER name=stream gen=uniform n=120 d=2 seed=13 dynamic=1")
          .ok());
  AwaitReady(&control, "stream");
  Result<Reply> status = control.Request("STATUS name=stream");
  ASSERT_TRUE(status.ok() && status.value().ok);
  const std::string v0 = *status.value().Find("version");

  // Worker busy; the SOLVE is admitted (snapshot pinned NOW) and queued.
  ASSERT_TRUE(blocker.SendLine("SLEEP ms=400").ok());
  AwaitStat(&control, "active_queries", [](size_t v) { return v >= 1; });
  ASSERT_TRUE(querier.SendLine("SOLVE name=stream k=3").ok());
  AwaitStat(&control, "queue_depth", [](size_t v) { return v >= 1; });

  // Publish new rows while the query waits.
  Result<Reply> append =
      control.Request("APPEND name=stream rows=0.9,0.1;0.1,0.9");
  ASSERT_TRUE(append.ok() && append.value().ok) << append.value().msg;
  const std::string v1 = *append.value().Find("version");
  EXPECT_NE(v0, v1);

  // The queued query still answers against its admission-time version,
  // bit-identical to a direct solve over the same 120 rows.
  Result<std::string> raw = querier.ReadLine();
  ASSERT_TRUE(raw.ok());
  Result<Reply> pinned = ParseReply(raw.value());
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned.value().ok) << pinned.value().msg;
  EXPECT_EQ(*pinned.value().Find("version"), v0);
  EXPECT_EQ(*pinned.value().Find("ids"), DirectSolveIds(120, 2, 13, 3));
  ASSERT_TRUE(blocker.ReadLine().ok());

  // A fresh query sees the appended version.
  Result<Reply> fresh = control.Request("SOLVE name=stream k=3");
  ASSERT_TRUE(fresh.ok() && fresh.value().ok);
  EXPECT_EQ(*fresh.value().Find("version"), v1);
  server.Stop();
}

TEST(Server, ClientDisconnectCancelsInFlightQuery) {
  RrrServer::Options options;
  options.workers = 1;
  RrrServer server(options);
  ASSERT_TRUE(server.Start().ok());

  LineClient doomed, control;
  Connect(server, &doomed);
  Connect(server, &control);
  ASSERT_TRUE(doomed.SendLine("SLEEP ms=60000").ok());
  AwaitStat(&control, "active_queries", [](size_t v) { return v >= 1; });
  doomed.Close();

  // The connection thread notices the dead socket, cancels the query's
  // ExecContext, and the worker bails out at its next preemption check.
  AwaitStat(&control, "disconnect_cancels",
            [](size_t v) { return v >= 1; });
  AwaitStat(&control, "cancelled", [](size_t v) { return v >= 1; });
  AwaitStat(&control, "active_queries", [](size_t v) { return v == 0; });
  server.Stop();
}

TEST(Server, MalformedAndUnknownInputKeepConnectionUsable) {
  RrrServer server({});
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  Connect(server, &client);

  Result<Reply> bad = client.Request("FROBNICATE x=1");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().ok);
  EXPECT_EQ(bad.value().code, "invalid_argument");

  Result<Reply> solve_missing = client.Request("SOLVE name=nope k=3");
  ASSERT_TRUE(solve_missing.ok());
  EXPECT_FALSE(solve_missing.value().ok);
  EXPECT_EQ(solve_missing.value().code, "not_found");

  Result<Reply> ping = client.Request("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping.value().ok);

  Result<Reply> quit = client.Request("QUIT");
  ASSERT_TRUE(quit.ok());
  EXPECT_TRUE(quit.value().ok);
  server.Stop();
}

TEST(Server, StopWithConnectedClientsShutsDownCleanly) {
  auto server = std::make_unique<RrrServer>(RrrServer::Options{});
  ASSERT_TRUE(server->Start().ok());
  LineClient idle, mid_query;
  Connect(*server, &idle);
  Connect(*server, &mid_query);
  ASSERT_TRUE(mid_query.SendLine("SLEEP ms=30000").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->Stop();
  server.reset();  // destructor re-runs Stop harmlessly
}

TEST(Server, FailpointVerbArmsListsAndClears) {
  FailpointGuard guard;
  RrrServer server({});
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  Connect(server, &client);
  ASSERT_TRUE(client.Request("REGISTER name=d gen=uniform n=60 d=2").ok());
  AwaitReady(&client, "d");

  // Armed over the wire: the next admission attempt dies as the typed
  // busy rejection, then the site self-disarms (once).
  Result<Reply> armed = client.Request(
      "FAILPOINT site=service.admission.submit "
      "spec=once@resource_exhausted");
  ASSERT_TRUE(armed.ok());
  ASSERT_TRUE(armed.value().ok) << armed.value().code;
  Result<Reply> rejected = client.Request("SOLVE name=d k=2");
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_EQ(rejected.value().code, "busy");
  Result<Reply> healed = client.Request("SOLVE name=d k=2");
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed.value().ok) << healed.value().code;

  // list=1 reports the drained site as policy:evaluations:injections.
  // evaluations stays 1: once the site self-disarmed, the healed SOLVE
  // took the fast path and never consulted the registry again.
  Result<Reply> listed = client.Request("FAILPOINT list=1");
  ASSERT_TRUE(listed.ok());
  ASSERT_TRUE(listed.value().ok);
  const std::string* report =
      listed.value().Find("service.admission.submit");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(*report, "off:1:1");

  Result<Reply> cleared = client.Request("FAILPOINT clear=1");
  ASSERT_TRUE(cleared.ok());
  EXPECT_TRUE(cleared.value().ok);
  Result<Reply> empty = client.Request("FAILPOINT list=1");
  ASSERT_TRUE(empty.ok());
  const std::string* count = empty.value().Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(*count, "0");

  // Malformed specs are rejected without arming anything.
  Result<Reply> bad = client.Request("FAILPOINT site=x spec=every-0");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().ok);
  EXPECT_EQ(bad.value().code, "invalid_argument");
  server.Stop();
}

TEST(Server, ArtifactBuildFaultDegradesBitIdentically) {
  FailpointGuard guard;
  // Oracle first — the failpoint registry is process-global and the
  // oracle must be the fault-free answer.
  const std::string oracle = DirectSolveIds(120, 3, 7, 3);

  RrrServer server({});
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  Connect(server, &client);
  ASSERT_TRUE(
      client.Request("REGISTER name=d gen=uniform n=120 d=3 seed=7").ok());
  AwaitReady(&client, "d");

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("core.artifact.candidate_index", "once")
                  .ok());
  Result<Reply> degraded = client.Request("SOLVE name=d k=3");
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded.value().ok) << degraded.value().code;
  const std::string* ids = degraded.value().Find("ids");
  ASSERT_NE(ids, nullptr);
  EXPECT_EQ(*ids, oracle);  // legacy path, bit-identical representative
  const std::string* flag = degraded.value().Find("degraded");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(*flag, "1");

  Result<Stats> stats = client.RequestStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value()["degraded_queries"], "1");
  EXPECT_EQ(stats.value()["errors"], "0");
  server.Stop();
}

TEST(Server, SocketFaultsDropOneConnectionNotTheServer) {
  FailpointGuard guard;
  RrrServer server({});
  ASSERT_TRUE(server.Start().ok());

  // An injected reply-write fault reads as the peer breaking the
  // connection: that client's reply is lost, the server keeps serving.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.socket.write", "once")
                  .ok());
  LineClient victim;
  Connect(server, &victim);
  Result<Reply> lost = victim.Request("PING");
  EXPECT_FALSE(lost.ok());  // transport-level failure, not a protocol ERR

  LineClient survivor;
  Connect(server, &survivor);
  Result<Reply> ping = survivor.Request("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping.value().ok);

  // Same for an injected request-read fault.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.socket.read", "once")
                  .ok());
  LineClient dropped;
  Connect(server, &dropped);
  EXPECT_FALSE(dropped.Request("PING").ok());
  EXPECT_TRUE(survivor.Request("PING").ok());
  server.Stop();
}

TEST(Server, RetryPolicyRecoversBusyAndAcceptFaultsButNeverSemanticErrors) {
  FailpointGuard guard;
  RrrServer server({});
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  Connect(server, &client);
  ASSERT_TRUE(client.Request("REGISTER name=d gen=uniform n=60 d=2").ok());
  AwaitReady(&client, "d");

  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 4;

  // busy is typed-retryable: one injected rejection, then success.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.admission.submit", "once@resource_exhausted")
                  .ok());
  size_t retries = 0;
  Result<Reply> solved =
      client.RequestWithRetry("SOLVE name=d k=2", policy, &retries);
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved.value().ok) << solved.value().code;
  EXPECT_EQ(retries, 1u);

  // An accept fault kills the fresh connection; the retry reconnects.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.socket.accept", "once")
                  .ok());
  LineClient flaky;
  Connect(server, &flaky);
  retries = 0;
  Result<Reply> pinged = flaky.RequestWithRetry("PING", policy, &retries);
  ASSERT_TRUE(pinged.ok());
  EXPECT_TRUE(pinged.value().ok);
  EXPECT_GE(retries, 1u);

  // Semantic rejections must NOT burn retry budget: k=0 is
  // invalid_argument forever.
  retries = 0;
  Result<Reply> invalid =
      client.RequestWithRetry("SOLVE name=d k=0", policy, &retries);
  ASSERT_TRUE(invalid.ok());
  EXPECT_FALSE(invalid.value().ok);
  EXPECT_EQ(invalid.value().code, "invalid_argument");
  EXPECT_EQ(retries, 0u);
  server.Stop();
}

TEST(Server, AbruptDisconnectsWithDefaultSigpipeDispositionSurvive) {
  // MSG_NOSIGNAL on every send is what keeps a dead peer from raising
  // SIGPIPE; run with the default (lethal) disposition to prove it.
  using SignalHandler = void (*)(int);
  SignalHandler previous = std::signal(SIGPIPE, SIG_DFL);
  RrrServer server({});
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 20; ++i) {
    LineClient hit_and_run;
    Connect(server, &hit_and_run);
    ASSERT_TRUE(hit_and_run.SendLine("PING").ok());
    hit_and_run.Close();  // reply often races the close -> send to dead fd
  }
  LineClient prober;
  Connect(server, &prober);
  Result<Reply> ping = prober.Request("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping.value().ok);
  server.Stop();
  std::signal(SIGPIPE, previous);
}

TEST(Server, TrafficSurvivesSignalStorm) {
  // EINTR regression: pepper the process with a no-signal-restart handler
  // while traffic runs; every blocked accept/recv/send must retry instead
  // of failing the connection.
  struct sigaction action{};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately NOT SA_RESTART
  struct sigaction previous{};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  RrrServer server({});
  ASSERT_TRUE(server.Start().ok());
  std::atomic<bool> storming{true};
  std::thread storm([&storming] {
    while (storming.load()) {
      // kill(), not raise(): raise targets the storm thread itself, kill
      // lets the kernel pick any thread — including ones blocked in
      // accept/recv, which is the point.
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  LineClient client;
  Connect(server, &client);
  for (int i = 0; i < 50; ++i) {
    Result<Reply> ping = client.Request("PING");
    ASSERT_TRUE(ping.ok()) << "iteration " << i;
    EXPECT_TRUE(ping.value().ok);
  }
  storming.store(false);
  storm.join();
  server.Stop();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);
}

}  // namespace
}  // namespace service
}  // namespace rrr
