#include "service/registry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/failpoint.h"
#include "core/engine.h"

namespace rrr {
namespace service {
namespace {

/// Disarms every failpoint on scope exit so one test's faults never leak
/// into the next.
struct FailpointGuard {
  FailpointGuard() { FailpointRegistry::Instance().DisarmAll(); }
  ~FailpointGuard() { FailpointRegistry::Instance().DisarmAll(); }
};

/// Polls until the entry leaves LOADING (registry prepares run on
/// background loader threads).
DatasetState AwaitSettled(DatasetRegistry* registry,
                          const std::string& name) {
  for (int i = 0; i < 2000; ++i) {
    Result<DatasetRegistry::EntryReport> report = registry->Report(name);
    if (!report.ok()) return DatasetState::kFailed;
    if (report.value().state != DatasetState::kLoading) {
      return report.value().state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return DatasetState::kLoading;
}

DatasetSpec UniformSpec(size_t n, size_t d, bool dynamic = false) {
  DatasetSpec spec;
  spec.generator = "uniform";
  spec.n = n;
  spec.d = d;
  spec.seed = 11;
  spec.dynamic = dynamic;
  return spec;
}

TEST(Registry, GeneratorSpecBecomesReadyAndAcquirable) {
  DatasetRegistry registry({});
  ASSERT_TRUE(registry.Register("cars", UniformSpec(200, 3)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "cars"), DatasetState::kReady);

  Result<DatasetRegistry::EntryReport> report = registry.Report("cars");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rows, 200u);
  EXPECT_EQ(report.value().dims, 3u);
  EXPECT_FALSE(report.value().dynamic);

  Result<DatasetRegistry::Acquired> acquired = registry.Acquire("cars");
  ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
  ASSERT_NE(acquired.value().engine, nullptr);
  ASSERT_NE(acquired.value().snapshot, nullptr);
  core::QueryOptions query;
  query.snapshot = acquired.value().snapshot;
  Result<core::QueryResult> result =
      acquired.value().engine->Solve(3, query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().representative.empty());
}

TEST(Registry, CsvSpecLoads) {
  const std::string path = "registry_test_rows.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,9\n2,8\n3,7\n4,6\n5,5\n";
  }
  DatasetRegistry registry({});
  DatasetSpec spec;
  spec.csv_path = path;
  ASSERT_TRUE(registry.Register("csv", std::move(spec)).ok());
  EXPECT_EQ(AwaitSettled(&registry, "csv"), DatasetState::kReady);
  Result<DatasetRegistry::EntryReport> report = registry.Report("csv");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rows, 5u);
  EXPECT_EQ(report.value().dims, 2u);
  std::remove(path.c_str());
}

TEST(Registry, BadGeneratorFailsWithErrorAndAcquireSurfacesIt) {
  DatasetRegistry registry({});
  DatasetSpec spec;
  spec.generator = "nope";
  spec.n = 10;
  spec.d = 2;
  ASSERT_TRUE(registry.Register("broken", std::move(spec)).ok());
  EXPECT_EQ(AwaitSettled(&registry, "broken"), DatasetState::kFailed);
  Result<DatasetRegistry::EntryReport> report = registry.Report("broken");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().error.empty());
  EXPECT_FALSE(registry.Acquire("broken").ok());
}

TEST(Registry, NameRulesAndDuplicatesRejected) {
  DatasetRegistry registry({});
  EXPECT_FALSE(registry.Register("", UniformSpec(10, 2)).ok());
  EXPECT_FALSE(registry.Register("has space", UniformSpec(10, 2)).ok());
  EXPECT_FALSE(registry.Register("has.dot", UniformSpec(10, 2)).ok());
  ASSERT_TRUE(registry.Register("ok", UniformSpec(10, 2)).ok());
  EXPECT_FALSE(registry.Register("ok", UniformSpec(10, 2)).ok());
  EXPECT_FALSE(registry.Acquire("never-registered").ok());
}

TEST(Registry, AppendPublishesNewVersionAndStaticRejects) {
  DatasetRegistry registry({});
  ASSERT_TRUE(registry.Register("dyn", UniformSpec(50, 2, true)).ok());
  ASSERT_TRUE(registry.Register("fix", UniformSpec(50, 2, false)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "dyn"), DatasetState::kReady);
  ASSERT_EQ(AwaitSettled(&registry, "fix"), DatasetState::kReady);

  Result<DatasetRegistry::Acquired> before = registry.Acquire("dyn");
  ASSERT_TRUE(before.ok());
  const DatasetVersion v0 = before.value().snapshot->version();

  Result<DatasetVersion> v1 =
      registry.Append("dyn", {{0.5, 0.5}, {0.25, 0.75}});
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1.value().origin, v0.origin);
  EXPECT_GT(v1.value().ordinal, v0.ordinal);

  Result<DatasetRegistry::Acquired> after = registry.Acquire("dyn");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().snapshot->dataset().size(),
            before.value().snapshot->dataset().size() + 2);
  // The pinned pre-append snapshot is untouched.
  EXPECT_EQ(before.value().snapshot->version(), v0);

  EXPECT_FALSE(registry.Append("fix", {{0.1, 0.2}}).ok());
  EXPECT_FALSE(registry.Delete("fix", 0).ok());
}

TEST(Registry, BudgetEvictsLeastRecentlyAcquiredFirst) {
  DatasetRegistry::Options options;
  options.artifact_budget_bytes = 1;  // anything evictable is over budget
  DatasetRegistry registry(options);
  ASSERT_TRUE(registry.Register("old", UniformSpec(300, 3)).ok());
  ASSERT_TRUE(registry.Register("hot", UniformSpec(300, 3)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "old"), DatasetState::kReady);
  ASSERT_EQ(AwaitSettled(&registry, "hot"), DatasetState::kReady);

  // Touch "old" first, then "hot": LRU order is old < hot.
  for (const char* name : {"old", "hot"}) {
    Result<DatasetRegistry::Acquired> acquired = registry.Acquire(name);
    ASSERT_TRUE(acquired.ok());
    core::QueryOptions query;
    query.snapshot = acquired.value().snapshot;
    ASSERT_TRUE(acquired.value().engine->Solve(3, query).ok());
  }
  const size_t before = registry.GetStats().cache_bytes;
  ASSERT_GT(before, 0u);

  const size_t evicted = registry.EnforceBudget();
  EXPECT_GE(evicted, 1u);
  const DatasetRegistry::Stats stats = registry.GetStats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_GT(stats.evicted_bytes, 0u);
  EXPECT_LT(stats.cache_bytes, before);

  // Solving again after eviction reproduces the same representative.
  Result<DatasetRegistry::Acquired> again = registry.Acquire("old");
  ASSERT_TRUE(again.ok());
  core::QueryOptions query;
  query.snapshot = again.value().snapshot;
  Result<core::QueryResult> rebuilt = again.value().engine->Solve(3, query);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt.value().representative.empty());
}

TEST(Registry, UnregisterDropsEntry) {
  DatasetRegistry registry({});
  ASSERT_TRUE(registry.Register("gone", UniformSpec(20, 2)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "gone"), DatasetState::kReady);
  ASSERT_TRUE(registry.Unregister("gone").ok());
  EXPECT_FALSE(registry.Report("gone").ok());
  EXPECT_FALSE(registry.Unregister("gone").ok());
}

TEST(Registry, StatsCoverPerDatasetRows) {
  DatasetRegistry registry({});
  ASSERT_TRUE(registry.Register("a", UniformSpec(30, 2)).ok());
  ASSERT_TRUE(registry.Register("b", UniformSpec(30, 2)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "a"), DatasetState::kReady);
  ASSERT_EQ(AwaitSettled(&registry, "b"), DatasetState::kReady);
  const DatasetRegistry::Stats stats = registry.GetStats();
  EXPECT_EQ(stats.datasets, 2u);
  EXPECT_EQ(stats.ready, 2u);
  ASSERT_EQ(stats.per_dataset.size(), 2u);
  EXPECT_EQ(stats.per_dataset[0].name, "a");
  EXPECT_EQ(stats.per_dataset[1].name, "b");
}

TEST(Registry, TransientPrepareFaultHealsViaAutomaticRetry) {
  FailpointGuard guard;
  // `once` kills exactly the first prepare attempt; the bounded in-task
  // retry runs a second attempt that succeeds without client involvement.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.registry.prepare", "once")
                  .ok());
  DatasetRegistry::Options options;
  options.prepare_backoff_ms = 1;
  DatasetRegistry registry(options);
  ASSERT_TRUE(registry.Register("flaky", UniformSpec(50, 2)).ok());
  EXPECT_EQ(AwaitSettled(&registry, "flaky"), DatasetState::kReady);
}

TEST(Registry, ExhaustedRetriesLandInFailedWithTheStatusMessage) {
  FailpointGuard guard;
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.registry.prepare", "every-1@internal")
                  .ok());
  DatasetRegistry::Options options;
  options.max_prepare_attempts = 2;
  options.prepare_backoff_ms = 1;
  DatasetRegistry registry(options);
  ASSERT_TRUE(registry.Register("doomed", UniformSpec(50, 2)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "doomed"), DatasetState::kFailed);

  // STATUS surfaces the final failure, attributably.
  Result<DatasetRegistry::EntryReport> report = registry.Report("doomed");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().error.find("failpoint"), std::string::npos)
      << report.value().error;
  EXPECT_NE(report.value().error.find("service.registry.prepare"),
            std::string::npos)
      << report.value().error;

  // Acquire surfaces the same load error instead of a bare NotFound.
  Result<DatasetRegistry::Acquired> acquired = registry.Acquire("doomed");
  ASSERT_FALSE(acquired.ok());
  EXPECT_NE(acquired.status().ToString().find("failpoint"),
            std::string::npos);
}

TEST(Registry, FailedEntryIsReRegisterableOnceTheFaultClears) {
  FailpointGuard guard;
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.registry.prepare", "every-1")
                  .ok());
  DatasetRegistry::Options options;
  options.max_prepare_attempts = 1;
  DatasetRegistry registry(options);
  ASSERT_TRUE(registry.Register("phoenix", UniformSpec(60, 3)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "phoenix"), DatasetState::kFailed);

  // LOADING/READY names stay re-REGISTER-proof; FAILED ones are replaced.
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(registry.Register("phoenix", UniformSpec(60, 3)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "phoenix"), DatasetState::kReady);
  EXPECT_FALSE(registry.Register("phoenix", UniformSpec(60, 3)).ok());

  Result<DatasetRegistry::Acquired> acquired = registry.Acquire("phoenix");
  ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
}

TEST(Registry, FailedEntryIsUnregisterable) {
  FailpointGuard guard;
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("service.registry.prepare", "every-1")
                  .ok());
  DatasetRegistry::Options options;
  options.max_prepare_attempts = 1;
  DatasetRegistry registry(options);
  ASSERT_TRUE(registry.Register("drop-me", UniformSpec(40, 2)).ok());
  ASSERT_EQ(AwaitSettled(&registry, "drop-me"), DatasetState::kFailed);
  EXPECT_TRUE(registry.Unregister("drop-me").ok());
  EXPECT_FALSE(registry.Report("drop-me").ok());
}

}  // namespace
}  // namespace service
}  // namespace rrr
