#include "baseline/hd_rrms.h"

#include <gtest/gtest.h>

#include "core/mdrc.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "eval/regret_ratio.h"
#include "test_util.h"

namespace rrr {
namespace baseline {
namespace {

TEST(HdRrmsTest, RejectsBadArguments) {
  data::Dataset empty;
  EXPECT_FALSE(SolveHdRrms(empty, 3).ok());
  const data::Dataset ds = data::GenerateUniform(10, 2, 1);
  EXPECT_FALSE(SolveHdRrms(ds, 0).ok());
}

TEST(HdRrmsTest, BudgetAtLeastNReturnsEverything) {
  const data::Dataset ds = data::GenerateUniform(12, 2, 2);
  Result<HdRrmsResult> res = SolveHdRrms(ds, 12);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->representative.size(), 12u);
  EXPECT_DOUBLE_EQ(res->achieved_ratio, 0.0);
}

TEST(HdRrmsTest, RespectsSizeBudget) {
  const data::Dataset ds = data::GenerateUniform(200, 3, 3);
  for (size_t budget : {1u, 3u, 8u}) {
    Result<HdRrmsResult> res = SolveHdRrms(ds, budget);
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res->representative.size(), budget);
    EXPECT_FALSE(res->representative.empty());
    for (int32_t id : res->representative) {
      EXPECT_GE(id, 0);
      EXPECT_LT(static_cast<size_t>(id), ds.size());
    }
  }
}

TEST(HdRrmsTest, LargerBudgetNeverHurtsTheRatio) {
  const data::Dataset ds = data::GenerateAnticorrelated(300, 3, 4);
  Result<HdRrmsResult> small = SolveHdRrms(ds, 2);
  Result<HdRrmsResult> large = SolveHdRrms(ds, 10);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(large->achieved_ratio, small->achieved_ratio + 1e-9);
}

TEST(HdRrmsTest, AchievedRatioTracksMeasuredRegretRatio) {
  const data::Dataset ds = data::GenerateUniform(150, 3, 5);
  Result<HdRrmsResult> res = SolveHdRrms(ds, 6);
  ASSERT_TRUE(res.ok());
  // Measured ratio over an independent function sample should be in the
  // same ballpark as the internally optimized one (binary-search slack +
  // discretization gap allowed).
  eval::RegretRatioOptions opts;
  opts.num_functions = 2000;
  opts.seed = 777;
  Result<double> measured =
      eval::SampledRegretRatio(ds, res->representative, opts);
  ASSERT_TRUE(measured.ok());
  EXPECT_LE(*measured, res->achieved_ratio + 0.1);
}

TEST(HdRrmsTest, BudgetOfOnePicksAnAllRounder) {
  // One tuple must cover every discretized function: greedy picks the
  // item with the best worst-case coverage; the achieved ratio is the
  // price of a singleton summary.
  const data::Dataset ds = data::GenerateUniform(150, 3, 10);
  Result<HdRrmsResult> res = SolveHdRrms(ds, 1);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->representative.size(), 1u);
  EXPECT_GT(res->achieved_ratio, 0.0);
  EXPECT_LT(res->achieved_ratio, 1.0);
}

TEST(HdRrmsTest, DeterministicUnderSeed) {
  const data::Dataset ds = data::GenerateUniform(100, 3, 6);
  Result<HdRrmsResult> a = SolveHdRrms(ds, 5);
  Result<HdRrmsResult> b = SolveHdRrms(ds, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->representative, b->representative);
  EXPECT_DOUBLE_EQ(a->achieved_ratio, b->achieved_ratio);
}

TEST(HdRrmsTest, AngleGridDiscretizationWorks) {
  const data::Dataset ds = data::GenerateUniform(300, 3, 8);
  HdRrmsOptions opts;
  opts.discretization = Discretization::kAngleGrid;
  opts.num_functions = 289;  // 17 x 17 grid
  Result<HdRrmsResult> res = SolveHdRrms(ds, 6, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->representative.size(), 6u);
  EXPECT_FALSE(res->representative.empty());
  // Deterministic without any seed dependence.
  Result<HdRrmsResult> res2 = SolveHdRrms(ds, 6, opts);
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res->representative, res2->representative);
  // Grid and random discretizations land in the same regret ballpark.
  HdRrmsOptions random_opts;
  random_opts.num_functions = 289;
  Result<HdRrmsResult> random_res = SolveHdRrms(ds, 6, random_opts);
  ASSERT_TRUE(random_res.ok());
  eval::RegretRatioOptions measure;
  measure.seed = 123;
  const double grid_ratio =
      *eval::SampledRegretRatio(ds, res->representative, measure);
  const double random_ratio =
      *eval::SampledRegretRatio(ds, random_res->representative, measure);
  EXPECT_LT(std::abs(grid_ratio - random_ratio), 0.15);
}

TEST(HdRrmsTest, GridIn2DUsesLinearSweep) {
  const data::Dataset ds = data::GenerateUniform(100, 2, 9);
  HdRrmsOptions opts;
  opts.discretization = Discretization::kAngleGrid;
  opts.num_functions = 64;
  Result<HdRrmsResult> res = SolveHdRrms(ds, 4, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->representative.size(), 4u);
}

TEST(HdRrmsTest, ScoreRegretSmallButRankRegretUnbounded) {
  // The paper's headline contrast (Figures 18/20): HD-RRMS achieves tiny
  // *score* regret yet can leave entire rank ranges uncovered, while MDRC
  // with the same budget bounds the rank-regret. The effect needs score
  // congregation at scale: in a 20K-row BN-like catalog the tight
  // depth/carat score bands turn small score gaps into hundreds of ranks.
  Result<data::Dataset> projected =
      data::GenerateBnLike(20000, 7).Project({0, 1, 4});  // carat,depth,price
  ASSERT_TRUE(projected.ok());
  const data::Dataset& ds = *projected;
  const size_t k = 200;  // 1% of n
  Result<std::vector<int32_t>> mdrc = core::SolveMdrc(ds, k);
  ASSERT_TRUE(mdrc.ok());
  HdRrmsOptions hd_opts;
  hd_opts.num_functions = 200;
  Result<HdRrmsResult> hd = SolveHdRrms(ds, mdrc->size(), hd_opts);
  ASSERT_TRUE(hd.ok());

  eval::SampledRankRegretOptions rank_opts;
  rank_opts.num_functions = 2000;
  Result<int64_t> hd_rank =
      eval::SampledRankRegret(ds, hd->representative, rank_opts);
  Result<int64_t> mdrc_rank = eval::SampledRankRegret(ds, *mdrc, rank_opts);
  ASSERT_TRUE(hd_rank.ok());
  ASSERT_TRUE(mdrc_rank.ok());
  EXPECT_LE(*mdrc_rank, static_cast<int64_t>(3 * k));  // d*k guarantee
  EXPECT_GT(*hd_rank, *mdrc_rank);  // the baseline loses on rank
  // And the baseline is genuinely good at its own objective.
  Result<double> hd_ratio =
      eval::SampledRegretRatio(ds, hd->representative);
  ASSERT_TRUE(hd_ratio.ok());
  EXPECT_LT(*hd_ratio, 0.2);
}

}  // namespace
}  // namespace baseline
}  // namespace rrr
