#ifndef RRR_TESTS_TEST_UTIL_H_
#define RRR_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "data/dataset.h"
#include "eval/rank_regret.h"
#include "geometry/vec.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace testing {

/// Builds a dataset from literal rows, aborting on malformed input
/// (tests construct only well-formed data).
inline data::Dataset MakeDataset(
    const std::vector<std::vector<double>>& rows) {
  Result<data::Dataset> ds = data::Dataset::FromRows(rows);
  RRR_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

/// The running example of the paper (Figure 1), 0-based ids: t1 -> 0, ...,
/// t7 -> 6.
inline data::Dataset PaperFigure1Dataset() {
  return MakeDataset({{0.80, 0.28},
                      {0.54, 0.45},
                      {0.67, 0.60},
                      {0.32, 0.42},
                      {0.46, 0.72},
                      {0.23, 0.52},
                      {0.91, 0.43}});
}

/// Top-k (best first) under the 2D function w = (cos theta, sin theta),
/// straight from the definition.
inline std::vector<int32_t> TopKAtAngle(const data::Dataset& dataset,
                                        double theta, size_t k) {
  return topk::TopK(
      dataset, topk::LinearFunction({std::cos(theta), std::sin(theta)}), k);
}

/// Exhaustive minimum RRR size for 2D datasets: tries all subsets of the
/// items that ever enter a top-k, smallest cardinality first, checking exact
/// rank-regret with the sweep evaluator. Exponential; use only for tiny n.
int64_t BruteForceOptimalRrrSize2D(const data::Dataset& dataset, size_t k);

/// Evenly spaced angles in [0, pi/2] including both endpoints.
std::vector<double> AngleGrid(size_t count);

}  // namespace testing
}  // namespace rrr

#endif  // RRR_TESTS_TEST_UTIL_H_
