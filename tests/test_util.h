#ifndef RRR_TESTS_TEST_UTIL_H_
#define RRR_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "data/dataset.h"
#include "eval/rank_regret.h"
#include "geometry/vec.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace rrr {
namespace testing {

/// Builds a dataset from literal rows, aborting on malformed input
/// (tests construct only well-formed data).
inline data::Dataset MakeDataset(
    const std::vector<std::vector<double>>& rows) {
  Result<data::Dataset> ds = data::Dataset::FromRows(rows);
  RRR_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

/// The running example of the paper (Figure 1), 0-based ids: t1 -> 0, ...,
/// t7 -> 6.
inline data::Dataset PaperFigure1Dataset() {
  return MakeDataset({{0.80, 0.28},
                      {0.54, 0.45},
                      {0.67, 0.60},
                      {0.32, 0.42},
                      {0.46, 0.72},
                      {0.23, 0.52},
                      {0.91, 0.43}});
}

/// Top-k (best first) under the 2D function w = (cos theta, sin theta),
/// straight from the definition.
inline std::vector<int32_t> TopKAtAngle(const data::Dataset& dataset,
                                        double theta, size_t k) {
  return topk::TopK(
      dataset, topk::LinearFunction({std::cos(theta), std::sin(theta)}), k);
}

/// Exhaustive minimum RRR size for 2D datasets: tries all subsets of the
/// items that ever enter a top-k, smallest cardinality first, checking exact
/// rank-regret with the sweep evaluator. Exponential; use only for tiny n.
int64_t BruteForceOptimalRrrSize2D(const data::Dataset& dataset, size_t k);

/// Evenly spaced angles in [0, pi/2] including both endpoints.
std::vector<double> AngleGrid(size_t count);

/// Synthetic data families exercised by the dynamic-data differential
/// suite: the classic distribution shapes plus two degenerate stressors
/// (tie-saturated duplicates and a zero-information column).
enum class DataFamily {
  kUniform,
  kCorrelated,
  kAnticorrelated,
  kDuplicateHeavy,
  kConstantColumn,
};

const std::vector<DataFamily>& AllDataFamilies();
const char* DataFamilyName(DataFamily family);

/// `n` rows of `d` dims drawn from the family, deterministic in `seed`.
/// All values are finite in [0, 1], higher-is-better (the library's data
/// contract).
std::vector<std::vector<double>> FamilyRows(DataFamily family, size_t n,
                                            size_t d, uint64_t seed);

/// One step of a recorded dynamic-data schedule. Mutations carry their
/// payload (rows to append, the id to delete) resolved at generation time
/// against the tracked dataset size, so a recorded schedule replays
/// identically no matter what the driver observed on a previous run.
struct DynamicOp {
  enum class Kind {
    kInsert,       // append rows[0]
    kBatchAppend,  // append all of rows as one version
    kDelete,       // delete delete_id (valid for the size at this step)
    kSolve,        // Solve(min(k, size))
    kSolveDual,    // SolveDual(max_size)
    kEvaluate,     // Evaluate(last Solve representative, its k)
    kSnapshotPin,  // pin Snapshot(), Solve against it now and at the end
  };
  Kind kind = Kind::kSolve;
  std::vector<std::vector<double>> rows;
  int32_t delete_id = 0;
  size_t k = 1;
  size_t max_size = 1;
};

/// A replayable interleaving of updates and queries over one family. The
/// whole schedule is a pure function of (family, seed, dims, num_ops);
/// ToString() renders everything a human needs to replay a failure.
struct DynamicSchedule {
  uint64_t seed = 0;
  DataFamily family = DataFamily::kUniform;
  size_t dims = 2;
  std::vector<std::vector<double>> initial_rows;
  std::vector<DynamicOp> ops;

  std::string ToString() const;
};

/// Generates a random schedule: 16-48 initial rows, then `num_ops` steps.
/// The first steps always cover {Solve, Insert, Delete, BatchAppend} (in a
/// seed-dependent order) so every schedule exercises every mutation kind;
/// the rest are drawn from a mixed distribution. Delete ids are drawn
/// against the size the dataset will have at that step, and Evaluate is
/// only emitted after at least one Solve.
DynamicSchedule MakeDynamicSchedule(DataFamily family, uint64_t seed,
                                    size_t dims, size_t num_ops);

}  // namespace testing
}  // namespace rrr

#endif  // RRR_TESTS_TEST_UTIL_H_
