// ColumnBlocks is the data layout under the blocked scoring kernel; these
// tests pin the transpose itself: cell placement, tail-block zero padding,
// thread-count invariance of the build, and ExecContext preemption.
#include "data/column_blocks.h"

#include <gtest/gtest.h>

#include <cstring>

#include "data/generators.h"

namespace rrr {
namespace data {
namespace {

TEST(ColumnBlocksTest, MirrorsEveryCell) {
  const Dataset ds = GenerateUniform(257, 5, 11);  // deliberately != 64k
  Result<ColumnBlocks> built = ColumnBlocks::Build(ds, 1);
  ASSERT_TRUE(built.ok());
  const ColumnBlocks& blocks = *built;
  EXPECT_EQ(blocks.rows(), ds.size());
  EXPECT_EQ(blocks.dims(), ds.dims());
  EXPECT_EQ(blocks.source(), &ds);
  EXPECT_EQ(blocks.num_blocks(),
            (ds.size() + ColumnBlocks::kBlockRows - 1) /
                ColumnBlocks::kBlockRows);
  for (size_t i = 0; i < ds.size(); ++i) {
    const size_t b = i / ColumnBlocks::kBlockRows;
    const size_t lane = i % ColumnBlocks::kBlockRows;
    for (size_t j = 0; j < ds.dims(); ++j) {
      EXPECT_EQ(blocks.column(b, j)[lane], ds.at(i, j))
          << "row " << i << " col " << j;
    }
  }
}

TEST(ColumnBlocksTest, TailBlockIsZeroPadded) {
  const Dataset ds = GenerateUniform(70, 3, 5);  // one full block + 6 rows
  Result<ColumnBlocks> built = ColumnBlocks::Build(ds, 1);
  ASSERT_TRUE(built.ok());
  const ColumnBlocks& blocks = *built;
  ASSERT_EQ(blocks.num_blocks(), 2u);
  EXPECT_EQ(blocks.block_rows(0), ColumnBlocks::kBlockRows);
  EXPECT_EQ(blocks.block_rows(1), 6u);
  for (size_t j = 0; j < ds.dims(); ++j) {
    const double* col = blocks.column(1, j);
    for (size_t lane = blocks.block_rows(1);
         lane < ColumnBlocks::kBlockRows; ++lane) {
      EXPECT_EQ(col[lane], 0.0);
    }
  }
}

TEST(ColumnBlocksTest, BuildIsThreadCountInvariant) {
  const Dataset ds = GenerateCorrelated(1000, 4, 3, 0.7);
  Result<ColumnBlocks> serial = ColumnBlocks::Build(ds, 1);
  Result<ColumnBlocks> parallel = ColumnBlocks::Build(ds, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->num_blocks(), parallel->num_blocks());
  const size_t block_doubles = ds.dims() * ColumnBlocks::kBlockRows;
  for (size_t b = 0; b < serial->num_blocks(); ++b) {
    EXPECT_EQ(std::memcmp(serial->block(b), parallel->block(b),
                          block_doubles * sizeof(double)),
              0)
        << "block " << b;
  }
}

TEST(ColumnBlocksTest, EmptyDataset) {
  const Dataset empty;
  Result<ColumnBlocks> built = ColumnBlocks::Build(empty, 1);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->empty());
  EXPECT_EQ(built->num_blocks(), 0u);
}

TEST(ColumnBlocksTest, BuildHonorsCancellation) {
  const Dataset ds = GenerateUniform(10000, 4, 9);
  CancellationSource source;
  source.RequestCancel();
  ExecContext ctx;
  ctx.cancel = source.token();
  Result<ColumnBlocks> built = ColumnBlocks::Build(ds, 2, ctx);
  EXPECT_EQ(built.status().code(), StatusCode::kCancelled);
}

TEST(ColumnBlocksTest, BuildHonorsDeadline) {
  const Dataset ds = GenerateUniform(1000, 3, 9);
  ExecContext ctx;
  ctx.deadline = Deadline::After(-1.0);  // already expired
  Result<ColumnBlocks> built = ColumnBlocks::Build(ds, 1, ctx);
  EXPECT_EQ(built.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace data
}  // namespace rrr
