#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#ifndef _WIN32
#include <sys/stat.h>
#include <unistd.h>

#include <thread>
#endif

#include <gtest/gtest.h>

#include "data/generators.h"

namespace rrr {
namespace data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "rrr_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, ReadsHeaderAndRows) {
  const std::string path = TempPath("basic.csv");
  WriteFile(path, "x,y\n1.5,2.5\n3.0,4.0\n");
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->dims(), 2u);
  EXPECT_EQ(ds->column_names(), (std::vector<std::string>{"x", "y"}));
  EXPECT_DOUBLE_EQ(ds->at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ds->at(1, 1), 4.0);
}

TEST_F(CsvTest, ReadsHeaderless) {
  const std::string path = TempPath("noheader.csv");
  WriteFile(path, "1,2\n3,4\n");
  CsvOptions opts;
  opts.has_header = false;
  Result<Dataset> ds = ReadCsv(path, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_DOUBLE_EQ(ds->at(0, 0), 1.0);
}

TEST_F(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blanks.csv");
  WriteFile(path, "x\n1\n\n2\n\n");
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
}

TEST_F(CsvTest, RejectsBadFieldByDefault) {
  const std::string path = TempPath("bad.csv");
  WriteFile(path, "x,y\n1,notanumber\n");
  Result<Dataset> ds = ReadCsv(path);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, SkipBadRowsDropsThem) {
  const std::string path = TempPath("skip.csv");
  WriteFile(path, "x,y\n1,2\n1,oops\n3,4\n5\n6,7\n");
  CsvOptions opts;
  opts.skip_bad_rows = true;
  Result<Dataset> ds = ReadCsv(path, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 3u);  // the malformed and short rows are dropped
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  const std::string path = TempPath("width.csv");
  WriteFile(path, "x,y\n1,2\n3\n");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, MissingFileIsIoError) {
  Result<Dataset> ds = ReadCsv(TempPath("does_not_exist.csv"));
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, HandlesCrlfLineEndings) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "x,y\r\n1,2\r\n3,4\r\n");
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->column_names()[1], "y");
  EXPECT_DOUBLE_EQ(ds->at(1, 1), 4.0);
}

TEST_F(CsvTest, MissingTrailingNewlineKeepsLastRow) {
  const std::string path = TempPath("notrail.csv");
  WriteFile(path, "x,y\n1,2\n3,4");  // no newline after the final row
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_DOUBLE_EQ(ds->at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(ds->at(1, 1), 4.0);
}

TEST_F(CsvTest, CrlfWithoutTrailingNewlineKeepsLastRow) {
  // The combination that used to corrupt the final tuple: Windows endings
  // and no newline after the last record.
  const std::string path = TempPath("crlf_notrail.csv");
  WriteFile(path, "x,y\r\n1,2\r\n3,4\r");
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_DOUBLE_EQ(ds->at(1, 1), 4.0);
}

TEST_F(CsvTest, QuotedFieldsMayContainTheSeparator) {
  const std::string path = TempPath("quoted.csv");
  WriteFile(path, "\"price, usd\",rating\n\"1,234.5\",4\n\"2,000\",5\n");
  // Quoted numeric fields with grouping commas are not parseable doubles;
  // the quoting must still isolate them as single fields (not split and
  // silently shift the row), so strict mode reports a clean parse error...
  Result<Dataset> strict = ReadCsv(path);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  // ...and the header (also containing the delimiter) stays one column.
  CsvOptions skip;
  skip.skip_bad_rows = true;
  Result<Dataset> ds = ReadCsv(path, skip);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dims(), 2u);
  EXPECT_EQ(ds->column_names()[0], "price, usd");
  EXPECT_EQ(ds->size(), 0u);  // both rows dropped: field not a number
}

TEST_F(CsvTest, QuotedNumericFieldsParse) {
  const std::string path = TempPath("quoted_num.csv");
  WriteFile(path, "x,y\n\"1.5\",\"2.5\"\n3,\"4\"\n");
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_DOUBLE_EQ(ds->at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ds->at(1, 1), 4.0);
}

TEST_F(CsvTest, EscapedQuotesInsideQuotedField) {
  const std::string path = TempPath("escq.csv");
  WriteFile(path, "\"col \"\"a\"\"\",b\n1,2\n");
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->column_names()[0], "col \"a\"");
  EXPECT_EQ(ds->size(), 1u);
}

TEST_F(CsvTest, UnterminatedQuoteIsAnError) {
  const std::string path = TempPath("unterminated.csv");
  WriteFile(path, "x,y\n\"1,2\n");
  Result<Dataset> strict = ReadCsv(path);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  CsvOptions skip;
  skip.skip_bad_rows = true;
  Result<Dataset> lenient = ReadCsv(path, skip);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->size(), 0u);
}

TEST_F(CsvTest, ColumnNameWithLineBreakIsRejectedOnWrite) {
  // The line-based reader cannot parse a quoted field spanning lines, so
  // writing such a header would produce a file ReadCsv rejects.
  Result<Dataset> ds =
      Dataset::FromRows({{1.0, 2.0}}, {"price\nUSD", "rating"});
  ASSERT_TRUE(ds.ok());
  const Status status = WriteCsv(TempPath("newline_name.csv"), *ds);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, QuotedHeaderRoundTrips) {
  Result<Dataset> original = Dataset::FromRows(
      {{1.0, 2.0}, {3.0, 4.0}}, {"price, usd", "rating \"stars\""});
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("quoted_roundtrip.csv");
  ASSERT_TRUE(WriteCsv(path, *original).ok());
  Result<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->column_names(), original->column_names());
  EXPECT_DOUBLE_EQ(loaded->at(1, 0), 3.0);
}

TEST_F(CsvTest, NanAndInfParseButSolverRejectsThem) {
  // ParseDouble accepts "nan"/"inf" (strtod semantics); AllFinite is the
  // guard that keeps them out of the solvers.
  const std::string path = TempPath("nonfinite.csv");
  WriteFile(path, "x,y\n1,nan\n2,inf\n3,4\n");
  Result<Dataset> ds = ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_FALSE(ds->AllFinite());
}

TEST_F(CsvTest, CustomSeparator) {
  const std::string path = TempPath("semi.csv");
  WriteFile(path, "a;b\n1;2\n");
  CsvOptions opts;
  opts.separator = ';';
  Result<Dataset> ds = ReadCsv(path, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dims(), 2u);
}

TEST_F(CsvTest, WriteReadRoundTrip) {
  const Dataset original = GenerateUniform(50, 4, 123);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(path, original).ok());
  Result<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->dims(), original.dims());
  EXPECT_EQ(loaded->column_names(), original.column_names());
  for (size_t i = 0; i < original.size(); ++i) {
    for (size_t j = 0; j < original.dims(); ++j) {
      // %.17g is lossless for doubles.
      EXPECT_DOUBLE_EQ(loaded->at(i, j), original.at(i, j));
    }
  }
}

TEST_F(CsvTest, WriteToUnwritablePathFails) {
  const Dataset ds = GenerateUniform(2, 2, 1);
  EXPECT_EQ(WriteCsv("/nonexistent_dir_xyz/out.csv", ds).code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, LargeIngestRoundTrips) {
  // Large-file ingest: exercises the file-size reserve heuristic (tens of
  // thousands of rows, short numeric fields) and verifies the parse is
  // exact at both ends and in the middle of the file.
  constexpr size_t kRows = 30000;
  constexpr size_t kDims = 6;
  const Dataset original = GenerateUniform(kRows, kDims, 777);
  const std::string path = TempPath("large.csv");
  ASSERT_TRUE(WriteCsv(path, original).ok());
  Result<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), kRows);
  ASSERT_EQ(loaded->dims(), kDims);
  for (size_t i : {size_t{0}, kRows / 2, kRows - 1}) {
    for (size_t j = 0; j < kDims; ++j) {
      EXPECT_DOUBLE_EQ(loaded->at(i, j), original.at(i, j));
    }
  }
}

#ifndef _WIN32
TEST_F(CsvTest, ReadsFromNonSeekableStream) {
  // Regression: the file-size probe behind the reserve heuristic must not
  // poison non-seekable inputs (FIFOs, process substitution) — seekg to
  // the end fails there, and an uncleaned failbit would make the read
  // loop see zero records.
  const std::string path = TempPath("fifo");
  ::unlink(path.c_str());
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0);
  std::thread writer([&] {
    std::ofstream out(path);
    out << "x,y\n1.5,2.5\n3.0,4.0\n";
  });
  Result<Dataset> ds = ReadCsv(path);
  writer.join();
  ::unlink(path.c_str());
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->dims(), 2u);
  EXPECT_DOUBLE_EQ(ds->at(1, 1), 4.0);
}
#endif  // !_WIN32

TEST_F(CsvTest, LargeIngestHeaderlessWithSkips) {
  // The reserve heuristic must stay an estimate: interleave bad rows that
  // skip_bad_rows drops so row count != file_size / row_bytes exactly.
  constexpr size_t kRows = 5000;
  std::string content;
  content.reserve(kRows * 12);
  for (size_t i = 0; i < kRows; ++i) {
    content += std::to_string(i) + ",1,2\n";
    if (i % 100 == 0) content += "bad,row,x\n";
  }
  const std::string path = TempPath("large_skip.csv");
  WriteFile(path, content);
  CsvOptions opts;
  opts.has_header = false;
  opts.skip_bad_rows = true;
  Result<Dataset> ds = ReadCsv(path, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), kRows);
  EXPECT_EQ(ds->dims(), 3u);
  EXPECT_DOUBLE_EQ(ds->at(kRows - 1, 0), static_cast<double>(kRows - 1));
}

}  // namespace
}  // namespace data
}  // namespace rrr
