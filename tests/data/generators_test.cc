#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace rrr {
namespace data {
namespace {

double PearsonCorrelation(const Dataset& ds, size_t col_a, size_t col_b) {
  const size_t n = ds.size();
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += ds.at(i, col_a);
    mb += ds.at(i, col_b);
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ds.at(i, col_a) - ma;
    const double db = ds.at(i, col_b) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  return cov / std::sqrt(va * vb);
}

void ExpectInUnitBox(const Dataset& ds) {
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = 0; j < ds.dims(); ++j) {
      EXPECT_GE(ds.at(i, j), 0.0);
      EXPECT_LE(ds.at(i, j), 1.0);
    }
  }
}

TEST(GeneratorsTest, ShapesAndDeterminism) {
  const Dataset a = GenerateUniform(100, 4, 7);
  const Dataset b = GenerateUniform(100, 4, 7);
  const Dataset c = GenerateUniform(100, 4, 8);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.dims(), 4u);
  EXPECT_TRUE(std::equal(a.flat(), a.flat() + 400, b.flat()));
  EXPECT_FALSE(std::equal(a.flat(), a.flat() + 400, c.flat()));
}

TEST(GeneratorsTest, UniformIsInUnitBox) {
  ExpectInUnitBox(GenerateUniform(500, 3, 1));
}

TEST(GeneratorsTest, CorrelatedHasPositiveCorrelation) {
  const Dataset ds = GenerateCorrelated(2000, 3, 2, 0.8);
  ExpectInUnitBox(ds);
  EXPECT_GT(PearsonCorrelation(ds, 0, 1), 0.5);
  EXPECT_GT(PearsonCorrelation(ds, 1, 2), 0.5);
}

TEST(GeneratorsTest, AnticorrelatedHasNegativeCorrelation) {
  const Dataset ds = GenerateAnticorrelated(2000, 2, 3);
  ExpectInUnitBox(ds);
  EXPECT_LT(PearsonCorrelation(ds, 0, 1), -0.3);
}

TEST(GeneratorsTest, CorrelationStrengthOrdersWithRho) {
  const double weak = PearsonCorrelation(GenerateCorrelated(3000, 2, 4, 0.3),
                                         0, 1);
  const double strong =
      PearsonCorrelation(GenerateCorrelated(3000, 2, 4, 0.9), 0, 1);
  EXPECT_GT(strong, weak);
}

TEST(GeneratorsTest, ClusteredStaysInBox) {
  const Dataset ds = GenerateClustered(1000, 4, 5, 3);
  ExpectInUnitBox(ds);
  EXPECT_EQ(ds.size(), 1000u);
}

TEST(GeneratorsTest, DotLikeSchema) {
  const Dataset ds = GenerateDotLike(300, 11);
  EXPECT_EQ(ds.dims(), 8u);
  EXPECT_EQ(ds.size(), 300u);
  ExpectInUnitBox(ds);
  EXPECT_EQ(ds.column_names()[0], "dep_delay");
  EXPECT_EQ(ds.column_names()[5], "distance");
}

TEST(GeneratorsTest, DotLikeAirTimeTracksDistance) {
  // Both are higher-better normalized, and physically correlated.
  const Dataset ds = GenerateDotLike(3000, 12);
  EXPECT_GT(PearsonCorrelation(ds, 4, 5), 0.8);  // air_time vs distance
}

TEST(GeneratorsTest, DotLikeDelayColumnsAreHeavyTailed) {
  // dep_delay is normalized lower-better: most flights are near 1 (small
  // delay), a heavy tail sits far below — median far above mean region.
  const Dataset ds = GenerateDotLike(5000, 13);
  std::vector<double> dep;
  for (size_t i = 0; i < ds.size(); ++i) dep.push_back(ds.at(i, 0));
  std::sort(dep.begin(), dep.end());
  const double median = dep[dep.size() / 2];
  EXPECT_GT(median, 0.9);          // most flights basically on time
  EXPECT_LT(dep.front(), 0.05);    // and someone had a terrible day
}

TEST(GeneratorsTest, BnLikeSchema) {
  const Dataset ds = GenerateBnLike(300, 14);
  EXPECT_EQ(ds.dims(), 5u);
  ExpectInUnitBox(ds);
  EXPECT_EQ(ds.column_names()[0], "carat");
  EXPECT_EQ(ds.column_names()[4], "price");
}

TEST(GeneratorsTest, BnLikePriceAnticorrelatesWithCarat) {
  // price is lower-better normalized: big stones cost more, so normalized
  // price (1 = cheapest) moves against carat.
  const Dataset ds = GenerateBnLike(3000, 15);
  EXPECT_LT(PearsonCorrelation(ds, 0, 4), -0.4);
}

TEST(GeneratorsTest, DotLikeDeterministicInSeed) {
  const Dataset a = GenerateDotLike(100, 99);
  const Dataset b = GenerateDotLike(100, 99);
  EXPECT_TRUE(std::equal(a.flat(), a.flat() + 800, b.flat()));
}

TEST(GeneratorsTest, PrefixStabilityForSweeps) {
  // Head(m) of a bigger generation equals a fresh generation of size m only
  // if the generator is row-sequential; we rely on prefix reuse in the
  // benches, so pin the property.
  const Dataset big = GenerateUniform(200, 3, 21);
  const Dataset small = GenerateUniform(120, 3, 21);
  EXPECT_TRUE(std::equal(small.flat(), small.flat() + 120 * 3, big.flat()));
}

}  // namespace
}  // namespace data
}  // namespace rrr
