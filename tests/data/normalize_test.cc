#include "data/normalize.h"

#include <gtest/gtest.h>

namespace rrr {
namespace data {
namespace {

Dataset Make(const std::vector<std::vector<double>>& rows) {
  Result<Dataset> ds = Dataset::FromRows(rows);
  RRR_CHECK(ds.ok());
  return std::move(ds).value();
}

TEST(NormalizeTest, HigherBetterMapsMinToZeroMaxToOne) {
  const Dataset ds = Make({{10.0}, {20.0}, {15.0}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm->at(2, 0), 0.5);
}

TEST(NormalizeTest, LowerBetterFlips) {
  const Dataset ds = Make({{10.0}, {20.0}, {15.0}});
  Result<Dataset> norm =
      MinMaxNormalize(ds, {Direction::kLowerBetter});
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 1.0);  // lowest raw value is best
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm->at(2, 0), 0.5);
}

TEST(NormalizeTest, MixedDirections) {
  const Dataset ds = Make({{1.0, 100.0}, {3.0, 200.0}});
  Result<Dataset> norm = MinMaxNormalize(
      ds, {Direction::kHigherBetter, Direction::kLowerBetter});
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm->at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm->at(1, 1), 0.0);
}

TEST(NormalizeTest, ConstantColumnMapsToHalf) {
  const Dataset ds = Make({{7.0, 1.0}, {7.0, 2.0}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 0.5);
}

TEST(NormalizeTest, OutputAlwaysInUnitInterval) {
  const Dataset ds = Make({{-5.0, 3.0}, {2.5, -1.0}, {0.0, 9.0}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_TRUE(norm.ok());
  for (size_t i = 0; i < norm->size(); ++i) {
    for (size_t j = 0; j < norm->dims(); ++j) {
      EXPECT_GE(norm->at(i, j), 0.0);
      EXPECT_LE(norm->at(i, j), 1.0);
    }
  }
}

TEST(NormalizeTest, PreservesRankOrderWithinColumn) {
  const Dataset ds = Make({{3.0}, {-2.0}, {11.0}, {0.5}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_TRUE(norm.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = 0; j < ds.size(); ++j) {
      EXPECT_EQ(ds.at(i, 0) < ds.at(j, 0), norm->at(i, 0) < norm->at(j, 0));
    }
  }
}

TEST(NormalizeTest, RejectsDirectionCountMismatch) {
  const Dataset ds = Make({{1.0, 2.0}});
  EXPECT_FALSE(MinMaxNormalize(ds, {Direction::kHigherBetter}).ok());
}

TEST(NormalizeTest, KeepsColumnNames) {
  Result<Dataset> ds = Dataset::FromRows({{1.0}, {2.0}}, {"price"});
  Result<Dataset> norm = MinMaxNormalize(*ds, {Direction::kLowerBetter});
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->column_names()[0], "price");
}

}  // namespace
}  // namespace data
}  // namespace rrr
