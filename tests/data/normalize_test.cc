#include "data/normalize.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace rrr {
namespace data {
namespace {

Dataset Make(const std::vector<std::vector<double>>& rows) {
  Result<Dataset> ds = Dataset::FromRows(rows);
  RRR_CHECK(ds.ok());
  return std::move(ds).value();
}

TEST(NormalizeTest, HigherBetterMapsMinToZeroMaxToOne) {
  const Dataset ds = Make({{10.0}, {20.0}, {15.0}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm->at(2, 0), 0.5);
}

TEST(NormalizeTest, LowerBetterFlips) {
  const Dataset ds = Make({{10.0}, {20.0}, {15.0}});
  Result<Dataset> norm =
      MinMaxNormalize(ds, {Direction::kLowerBetter});
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 1.0);  // lowest raw value is best
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm->at(2, 0), 0.5);
}

TEST(NormalizeTest, MixedDirections) {
  const Dataset ds = Make({{1.0, 100.0}, {3.0, 200.0}});
  Result<Dataset> norm = MinMaxNormalize(
      ds, {Direction::kHigherBetter, Direction::kLowerBetter});
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm->at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm->at(1, 1), 0.0);
}

TEST(NormalizeTest, ConstantColumnIsRejectedByDefault) {
  // A zero-range column carries no ranking information; normalizing it
  // silently used to hide schema bugs. The default now fails loudly and
  // names the column.
  const Dataset ds = Make({{7.0, 1.0}, {7.0, 2.0}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_FALSE(norm.ok());
  EXPECT_EQ(norm.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(norm.status().message().find("a0"), std::string::npos)
      << "error must name the offending column: "
      << norm.status().message();
}

TEST(NormalizeTest, ConstantColumnMapsToHalfUnderOptInPolicy) {
  const Dataset ds = Make({{7.0, 1.0}, {7.0, 2.0}});
  NormalizeOptions options;
  options.constant_columns = ConstantColumnPolicy::kMapToHalf;
  Result<Dataset> norm = MinMaxNormalize(ds, options);
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ(norm->at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(norm->at(1, 0), 0.5);
}

TEST(NormalizeTest, RejectsNonFiniteValues) {
  // NaN/inf must never reach the (v - min) / range arithmetic, where they
  // turn into NaN scores with undefined comparator ordering.
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    const Dataset ds = Make({{1.0, 2.0}, {3.0, bad}});
    Result<Dataset> norm = MinMaxNormalize(ds);
    ASSERT_FALSE(norm.ok()) << "value " << bad;
    EXPECT_EQ(norm.status().code(), StatusCode::kInvalidArgument);
    // The error pinpoints the cell (row 1, column a1).
    EXPECT_NE(norm.status().message().find("row 1"), std::string::npos)
        << norm.status().message();
    EXPECT_NE(norm.status().message().find("a1"), std::string::npos)
        << norm.status().message();
  }
}

TEST(NormalizeTest, InfiniteColumnIsNotTreatedAsConstant) {
  // An all-inf column has hi == lo == inf (range NaN); it must fail the
  // finiteness check, not slip through the constant-column path as 0.5.
  const Dataset ds =
      Make({{std::numeric_limits<double>::infinity(), 1.0},
            {std::numeric_limits<double>::infinity(), 2.0}});
  NormalizeOptions permissive;
  permissive.constant_columns = ConstantColumnPolicy::kMapToHalf;
  Result<Dataset> norm = MinMaxNormalize(ds, permissive);
  ASSERT_FALSE(norm.ok());
  EXPECT_EQ(norm.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizeTest, OutputAlwaysInUnitInterval) {
  const Dataset ds = Make({{-5.0, 3.0}, {2.5, -1.0}, {0.0, 9.0}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_TRUE(norm.ok());
  for (size_t i = 0; i < norm->size(); ++i) {
    for (size_t j = 0; j < norm->dims(); ++j) {
      EXPECT_GE(norm->at(i, j), 0.0);
      EXPECT_LE(norm->at(i, j), 1.0);
    }
  }
}

TEST(NormalizeTest, PreservesRankOrderWithinColumn) {
  const Dataset ds = Make({{3.0}, {-2.0}, {11.0}, {0.5}});
  Result<Dataset> norm = MinMaxNormalize(ds);
  ASSERT_TRUE(norm.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = 0; j < ds.size(); ++j) {
      EXPECT_EQ(ds.at(i, 0) < ds.at(j, 0), norm->at(i, 0) < norm->at(j, 0));
    }
  }
}

TEST(NormalizeTest, RejectsDirectionCountMismatch) {
  const Dataset ds = Make({{1.0, 2.0}});
  EXPECT_FALSE(MinMaxNormalize(ds, {Direction::kHigherBetter}).ok());
}

TEST(NormalizeTest, KeepsColumnNames) {
  Result<Dataset> ds = Dataset::FromRows({{1.0}, {2.0}}, {"price"});
  Result<Dataset> norm = MinMaxNormalize(*ds, {Direction::kLowerBetter});
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->column_names()[0], "price");
}

}  // namespace
}  // namespace data
}  // namespace rrr
