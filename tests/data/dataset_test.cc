#include "data/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace rrr {
namespace data {
namespace {

TEST(DatasetTest, FromRowsBasics) {
  Result<Dataset> ds = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->dims(), 2u);
  EXPECT_DOUBLE_EQ(ds->at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(ds->at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(ds->row(1)[1], 4.0);
}

TEST(DatasetTest, DefaultColumnNames) {
  Result<Dataset> ds = Dataset::FromRows({{1.0, 2.0, 3.0}});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->column_names(),
            (std::vector<std::string>{"a0", "a1", "a2"}));
}

TEST(DatasetTest, CustomColumnNames) {
  Result<Dataset> ds = Dataset::FromRows({{1.0, 2.0}}, {"price", "carat"});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->column_names()[0], "price");
}

TEST(DatasetTest, RejectsRaggedRows) {
  EXPECT_FALSE(Dataset::FromRows({{1.0, 2.0}, {3.0}}).ok());
}

TEST(DatasetTest, RejectsWrongNameCount) {
  EXPECT_FALSE(Dataset::FromRows({{1.0, 2.0}}, {"only_one"}).ok());
}

TEST(DatasetTest, FromFlatValidatesCellCount) {
  EXPECT_TRUE(Dataset::FromFlat({1, 2, 3, 4}, 2, 2).ok());
  EXPECT_FALSE(Dataset::FromFlat({1, 2, 3}, 2, 2).ok());
}

TEST(DatasetTest, EmptyDataset) {
  Dataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.size(), 0u);
  Result<Dataset> from_rows = Dataset::FromRows({});
  ASSERT_TRUE(from_rows.ok());
  EXPECT_TRUE(from_rows->empty());
}

TEST(DatasetTest, HeadTakesPrefix) {
  Result<Dataset> ds = Dataset::FromRows({{1.0}, {2.0}, {3.0}});
  ASSERT_TRUE(ds.ok());
  const Dataset head = ds->Head(2);
  EXPECT_EQ(head.size(), 2u);
  EXPECT_DOUBLE_EQ(head.at(1, 0), 2.0);
  EXPECT_EQ(ds->Head(10).size(), 3u);  // clamped
  EXPECT_EQ(ds->Head(0).size(), 0u);
}

TEST(DatasetTest, SampleWithoutReplacement) {
  Result<Dataset> ds =
      Dataset::FromRows({{0.0}, {1.0}, {2.0}, {3.0}, {4.0}});
  ASSERT_TRUE(ds.ok());
  Rng rng(5);
  const Dataset sample = ds->Sample(3, &rng);
  EXPECT_EQ(sample.size(), 3u);
  // Values must be distinct members of the original, in ascending row
  // order (sampling preserves relative order).
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample.at(i - 1, 0), sample.at(i, 0));
  }
}

TEST(DatasetTest, SampleLargerThanDataReturnsAll) {
  Result<Dataset> ds = Dataset::FromRows({{1.0}, {2.0}});
  Rng rng(6);
  EXPECT_EQ(ds->Sample(10, &rng).size(), 2u);
}

TEST(DatasetTest, ProjectPrefixKeepsLeadingColumns) {
  Result<Dataset> ds =
      Dataset::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}}, {"a", "b", "c"});
  const Dataset p = ds->ProjectPrefix(2);
  EXPECT_EQ(p.dims(), 2u);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 5.0);
  EXPECT_EQ(p.column_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(DatasetTest, ProjectReordersColumns) {
  Result<Dataset> ds =
      Dataset::FromRows({{1.0, 2.0, 3.0}}, {"a", "b", "c"});
  Result<Dataset> p = ds->Project({2, 0});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(p->at(0, 1), 1.0);
  EXPECT_EQ(p->column_names(), (std::vector<std::string>{"c", "a"}));
}

TEST(DatasetTest, AllFiniteDetectsNanAndInf) {
  EXPECT_TRUE(Dataset::FromRows({{1.0, 2.0}})->AllFinite());
  EXPECT_FALSE(
      Dataset::FromRows({{1.0, std::nan("")}})->AllFinite());
  EXPECT_FALSE(Dataset::FromRows({{1.0, INFINITY}})->AllFinite());
  EXPECT_FALSE(Dataset::FromRows({{-INFINITY, 0.0}})->AllFinite());
  Dataset empty;
  EXPECT_TRUE(empty.AllFinite());
}

TEST(DatasetTest, CheckFinitePinpointsTheOffendingCell) {
  Result<Dataset> ok = Dataset::FromRows({{1.0, 2.0}});
  EXPECT_TRUE(ok->CheckFinite().ok());
  Dataset empty;
  EXPECT_TRUE(empty.CheckFinite().ok());
  Result<Dataset> bad = Dataset::FromRows(
      {{1.0, 2.0}, {3.0, std::nan("")}}, {"price", "rating"});
  const Status status = bad->CheckFinite();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("row 1"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("rating"), std::string::npos)
      << status.message();
}

TEST(DatasetTest, ProjectRejectsBadColumn) {
  Result<Dataset> ds = Dataset::FromRows({{1.0, 2.0}});
  EXPECT_FALSE(ds->Project({0, 5}).ok());
  EXPECT_FALSE(ds->Project({-1}).ok());
}

}  // namespace
}  // namespace data
}  // namespace rrr
