// k-skyband candidate-pruning bench: every top-k hot path (MDRC corner
// evaluations, the sampled evaluator, K-SETr draws, the 2D sweep) timed
// unpruned vs pruned over the shared CandidateIndex, on skyband-friendly
// (DOT-like) data and the anti-correlated worst case where the index
// declines to build. The committed BENCH_skyband.json is this driver's
// output (NOTE: measured in the 1-CPU bench container, like every
// committed BENCH file).
//
// Variants per scenario:
//   unpruned      — the legacy full-scan path
//   pruned+build  — cold: index construction included (first engine query)
//   pruned        — warm: index shared, as in prepare-once/query-many
// Representatives/regrets are bit-identical across variants (pinned by
// tests/core/skyband_equivalence_test.cc); rows differ only in wall time.
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/candidate_index.h"
#include "core/evaluator.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "core/rrr2d.h"
#include "data/generators.h"
#include "figure_util.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace {

using namespace rrr;

void Row(const std::string& scenario, const std::string& dist, size_t n,
         size_t d, size_t k, const std::string& variant, double seconds,
         size_t band_size, size_t output, double speedup) {
  bench::PrintRow({scenario, dist, StrFormat("%zu", n), StrFormat("%zu", d),
                   StrFormat("%zu", k), variant, StrFormat("%.4f", seconds),
                   StrFormat("%zu", band_size), StrFormat("%zu", output),
                   StrFormat("%.2f", speedup)});
}

/// Builds the index with default (profitability-gated) options — exactly
/// what PreparedDataset does — reporting build time and band size. Null
/// index means the build declined (anti-correlated worst case).
std::shared_ptr<const core::CandidateIndex> BuildIndex(
    const data::Dataset& ds, size_t k, double* build_seconds) {
  Stopwatch timer;
  Result<core::CandidateIndex::Outcome> outcome =
      core::CandidateIndex::Create(ds, k);
  *build_seconds = timer.ElapsedSeconds();
  RRR_CHECK_OK(outcome.status());
  return outcome->index;
}

void MdrcScenario(const std::string& dist, const data::Dataset& ds,
                  size_t k) {
  const size_t n = ds.size();
  const size_t d = ds.dims();
  double build = 0.0;
  const auto index = BuildIndex(ds, k, &build);
  const size_t band = index != nullptr ? index->band_size() : 0;

  // Fresh private corner cache per solve: cross-solve memoization would
  // turn the repeat solves into cache lookups and hide the scan cost.
  auto solve = [&](const core::CandidateIndex* candidates, size_t* out) {
    Stopwatch timer;
    Result<std::vector<int32_t>> rep =
        core::SolveMdrc(ds, k, {}, nullptr, {}, nullptr, candidates);
    RRR_CHECK_OK(rep.status());
    *out = rep->size();
    return timer.ElapsedSeconds();
  };
  size_t out = 0;
  const double unpruned = solve(nullptr, &out);
  const double pruned = solve(index.get(), &out);
  Row("mdrc", dist, n, d, k, "unpruned", unpruned, band, out, 1.0);
  Row("mdrc", dist, n, d, k, "pruned+build", pruned + build, band, out,
      unpruned / (pruned + build));
  Row("mdrc", dist, n, d, k, "pruned", pruned, band, out, unpruned / pruned);
}

void Rrr2dScenario(const std::string& dist, const data::Dataset& ds,
                   size_t k) {
  const size_t n = ds.size();
  double build = 0.0;
  const auto index = BuildIndex(ds, k, &build);
  const size_t band = index != nullptr ? index->band_size() : 0;
  auto solve = [&](const core::CandidateIndex* candidates, size_t* out) {
    Stopwatch timer;
    Result<std::vector<int32_t>> rep =
        core::Solve2dRrr(ds, k, {}, {}, nullptr, candidates);
    RRR_CHECK_OK(rep.status());
    *out = rep->size();
    return timer.ElapsedSeconds();
  };
  size_t out = 0;
  const double unpruned = solve(nullptr, &out);
  const double pruned = solve(index.get(), &out);
  Row("2drrr", dist, n, 2, k, "unpruned", unpruned, band, out, 1.0);
  Row("2drrr", dist, n, 2, k, "pruned+build", pruned + build, band, out,
      unpruned / (pruned + build));
  Row("2drrr", dist, n, 2, k, "pruned", pruned, band, out,
      unpruned / pruned);
}

void EvaluatorScenario(const std::string& dist, const data::Dataset& ds,
                       size_t k, size_t num_functions) {
  const size_t n = ds.size();
  const size_t d = ds.dims();
  double build = 0.0;
  const auto index = BuildIndex(ds, k, &build);
  const size_t band = index != nullptr ? index->band_size() : 0;
  // Subset under audit: the diagonal function's top-k — representative-like
  // (low regret) without paying a solver run inside the timed region.
  const topk::LinearFunction diagonal{geometry::Vec(d, 1.0)};
  const std::vector<int32_t> subset =
      index != nullptr ? index->TopKSet(diagonal, k)
                       : topk::TopKSet(ds, diagonal, k);
  core::SampledRegretOptions options;
  options.num_functions = num_functions;
  auto evaluate = [&](const core::CandidateIndex* candidates) {
    Stopwatch timer;
    Result<int64_t> regret =
        core::SampledRankRegretEstimate(ds, subset, options, {}, candidates);
    RRR_CHECK_OK(regret.status());
    return timer.ElapsedSeconds();
  };
  const double unpruned = evaluate(nullptr);
  const double pruned = evaluate(index.get());
  Row("eval-sampled", dist, n, d, k, "unpruned", unpruned, band,
      subset.size(), 1.0);
  Row("eval-sampled", dist, n, d, k, "pruned+build", pruned + build, band,
      subset.size(), unpruned / (pruned + build));
  Row("eval-sampled", dist, n, d, k, "pruned", pruned, band, subset.size(),
      unpruned / pruned);
}

void SamplerScenario(const std::string& dist, const data::Dataset& ds,
                     size_t k) {
  const size_t n = ds.size();
  const size_t d = ds.dims();
  double build = 0.0;
  const auto index = BuildIndex(ds, k, &build);
  const size_t band = index != nullptr ? index->band_size() : 0;
  auto sample = [&](const core::CandidateIndex* candidates, size_t* ksets) {
    Stopwatch timer;
    Result<core::KSetSampleResult> result =
        core::SampleKSets(ds, k, {}, {}, candidates);
    RRR_CHECK_OK(result.status());
    *ksets = result->ksets.size();
    return timer.ElapsedSeconds();
  };
  size_t ksets = 0;
  const double unpruned = sample(nullptr, &ksets);
  const double pruned = sample(index.get(), &ksets);
  Row("ksetr", dist, n, d, k, "unpruned", unpruned, band, ksets, 1.0);
  Row("ksetr", dist, n, d, k, "pruned+build", pruned + build, band, ksets,
      unpruned / (pruned + build));
  Row("ksetr", dist, n, d, k, "pruned", pruned, band, ksets,
      unpruned / pruned);
}

}  // namespace

int main() {
  bench::PrintFigureHeader(
      "skyband", "Skyband pruning",
      "k-skyband candidate index vs full scans on every top-k hot path, "
      "under the default (profitability-gated) build policy; uniform and "
      "correlated data prune hard, tie-heavy DOT-like columns and the "
      "anti-correlated worst case decline and stay at the unpruned "
      "baseline",
      "scenario,distribution,n,d,k,variant,time_sec,band_size,output,"
      "speedup_vs_unpruned");

  // Index construction cost (or the cost of declining) across the n x d
  // grid at k = 1% of n — the amortized one-off every pruned engine query
  // shares. band_size 0 = the build declined.
  for (size_t n : {size_t{10000}, size_t{100000}}) {
    for (const char* dist : {"dotlike", "uniform", "correlated"}) {
      for (size_t d : {size_t{2}, size_t{4}, size_t{6}}) {
        const data::Dataset ds =
            std::string(dist) == "dotlike"
                ? data::GenerateDotLike(n, 42).ProjectPrefix(d)
                : (std::string(dist) == "uniform"
                       ? data::GenerateUniform(n, d, 42)
                       : data::GenerateCorrelated(n, d, 42, 0.7));
        const size_t k = n / 100;
        double build = 0.0;
        const auto index = BuildIndex(ds, k, &build);
        Row("index-build", dist, n, d, k, "build", build,
            index != nullptr ? index->band_size() : 0, 0, 1.0);
      }
    }
  }

  // MDRC: pruning pays where the partition tree is non-trivial AND the
  // band is small — small k on weakly-correlated data. Tie-heavy DOT-like
  // columns at d >= 4 decline (their band is most of n), pinning the
  // no-regression side.
  MdrcScenario("uniform", data::GenerateUniform(10000, 4, 42), 20);
  MdrcScenario("uniform", data::GenerateUniform(100000, 4, 42), 100);
  MdrcScenario("correlated", data::GenerateCorrelated(100000, 6, 42, 0.7),
               1000);
  MdrcScenario("dotlike", data::GenerateDotLike(100000, 42).ProjectPrefix(4),
               1000);

  // 2D sweep: O(n^2) exchange events unpruned makes n=10k the ceiling for
  // the unpruned baseline; the pruned sweep runs over the band only.
  Rrr2dScenario("dotlike", data::GenerateDotLike(10000, 42).ProjectPrefix(2),
                100);
  Rrr2dScenario("uniform", data::GenerateUniform(10000, 2, 42), 100);

  // Sampled evaluator at the paper's 10k-function protocol. Correlated
  // d=4 at n=100k is the acceptance scenario; DOT-like d=4 declines under
  // the default build budget and stays at the baseline.
  EvaluatorScenario("correlated", data::GenerateCorrelated(10000, 4, 42, 0.7),
                    100, 10000);
  EvaluatorScenario("correlated",
                    data::GenerateCorrelated(100000, 4, 42, 0.7), 1000,
                    10000);
  EvaluatorScenario("dotlike",
                    data::GenerateDotLike(100000, 42).ProjectPrefix(4), 1000,
                    10000);

  // K-SETr draws through the shared index. d=3 keeps the coupon-collector
  // sample count (and this driver's smoke runtime) bounded — at d=4 the
  // distinct k-set count explodes into hundreds of thousands of draws.
  SamplerScenario("correlated", data::GenerateCorrelated(8000, 3, 42, 0.7),
                  50);

  // Anti-correlated worst case: the pre-check declines the index (band ~ n)
  // in milliseconds and every pruned variant degrades to the unpruned path
  // — the "no regression > 5%" guard.
  EvaluatorScenario("anticorrelated",
                    data::GenerateAnticorrelated(100000, 4, 42), 1000, 10000);
  Rrr2dScenario("anticorrelated", data::GenerateAnticorrelated(10000, 2, 42),
                100);

  return 0;
}
