// Ablation: the k-skyband prefilter for K-SETr (DESIGN.md extension). Shows
// the band computation cost, the reduction factor, and K-SETr time with and
// without the filter on dominance-heavy (correlated) vs adversarial
// (anticorrelated) data.
#include <benchmark/benchmark.h>

#include "core/kset_sampler.h"
#include "data/generators.h"
#include "geometry/dominance.h"

namespace {

using rrr::core::KSetSamplerOptions;
using rrr::core::SampleKSets;
using rrr::data::Dataset;

void BM_KSkyband(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset ds = rrr::data::GenerateDotLike(n, 1).ProjectPrefix(3);
  size_t band_size = 0;
  for (auto _ : state) {
    const auto band =
        rrr::geometry::KSkyband(ds.flat(), ds.size(), ds.dims(), 20);
    band_size = band.size();
    benchmark::DoNotOptimize(band);
  }
  state.counters["band_fraction"] =
      static_cast<double>(band_size) / static_cast<double>(n);
}
BENCHMARK(BM_KSkyband)->Arg(1000)->Arg(5000);

void RunSampler(benchmark::State& state, const Dataset& ds, bool prefilter) {
  KSetSamplerOptions opts;
  opts.skyband_prefilter = prefilter;
  opts.termination_count = 50;
  size_t ksets = 0;
  for (auto _ : state) {
    auto sample = SampleKSets(ds, 20, opts);
    ksets = sample->ksets.size();
    benchmark::DoNotOptimize(sample);
  }
  state.counters["ksets"] = static_cast<double>(ksets);
}

void BM_KSetrNoPrefilter_Correlated(benchmark::State& state) {
  const Dataset ds = rrr::data::GenerateCorrelated(
      static_cast<size_t>(state.range(0)), 3, 2, 0.9);
  RunSampler(state, ds, false);
}
BENCHMARK(BM_KSetrNoPrefilter_Correlated)->Arg(2000);

void BM_KSetrWithPrefilter_Correlated(benchmark::State& state) {
  const Dataset ds = rrr::data::GenerateCorrelated(
      static_cast<size_t>(state.range(0)), 3, 2, 0.9);
  RunSampler(state, ds, true);
}
BENCHMARK(BM_KSetrWithPrefilter_Correlated)->Arg(2000);

void BM_KSetrNoPrefilter_Anticorrelated(benchmark::State& state) {
  const Dataset ds = rrr::data::GenerateAnticorrelated(
      static_cast<size_t>(state.range(0)), 3, 2);
  RunSampler(state, ds, false);
}
BENCHMARK(BM_KSetrNoPrefilter_Anticorrelated)->Arg(2000);

void BM_KSetrWithPrefilter_Anticorrelated(benchmark::State& state) {
  const Dataset ds = rrr::data::GenerateAnticorrelated(
      static_cast<size_t>(state.range(0)), 3, 2);
  RunSampler(state, ds, true);
}
BENCHMARK(BM_KSetrWithPrefilter_Anticorrelated)->Arg(2000);

}  // namespace
