// Micro-benchmarks for the top-k substrate: selection vs full sort, rank
// queries, and the effect of k.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "data/generators.h"
#include "topk/rank.h"
#include "topk/scoring.h"
#include "topk/threshold_algorithm.h"
#include "topk/topk.h"

namespace {

using rrr::data::Dataset;
using rrr::data::GenerateUniform;
using rrr::topk::LinearFunction;

void BM_TopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const Dataset ds = GenerateUniform(n, 4, 1);
  LinearFunction f({0.4, 0.3, 0.2, 0.1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr::topk::TopK(ds, f, k));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TopK)
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({100000, 1000});

void BM_ThresholdAlgorithmQuery(benchmark::State& state) {
  // Ablation vs BM_TopK: amortized TA query cost after a one-time index
  // build; the win grows with correlation (rho 0.9 here).
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const Dataset ds = rrr::data::GenerateCorrelated(n, 4, 1, 0.9);
  const rrr::topk::ThresholdAlgorithmIndex index(ds);
  LinearFunction f({0.4, 0.3, 0.2, 0.1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopK(f, k));
  }
  state.counters["scan_depth"] =
      static_cast<double>(index.last_scan_depth());
}
BENCHMARK(BM_ThresholdAlgorithmQuery)
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({100000, 1000});

void BM_ThresholdAlgorithmBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset ds = rrr::data::GenerateCorrelated(n, 4, 2, 0.9);
  for (auto _ : state) {
    rrr::topk::ThresholdAlgorithmIndex index(ds);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_ThresholdAlgorithmBuild)->Arg(10000)->Arg(100000);

void BM_RankOf(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset ds = GenerateUniform(n, 4, 2);
  LinearFunction f({0.25, 0.25, 0.25, 0.25});
  int32_t item = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr::topk::RankOf(ds, f, item));
    item = (item + 1) % static_cast<int32_t>(n);
  }
}
BENCHMARK(BM_RankOf)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MinRankOfSubset(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset ds = GenerateUniform(n, 4, 3);
  LinearFunction f({0.25, 0.25, 0.25, 0.25});
  std::vector<int32_t> subset;
  for (size_t i = 0; i < 20; ++i) {
    subset.push_back(static_cast<int32_t>(i * n / 20));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr::topk::MinRankOfSubset(ds, f, subset));
  }
}
BENCHMARK(BM_MinRankOfSubset)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
