// Figures 23 + 24: Blue-Nile-like dataset, MD — time and quality of MDRC,
// MDRRR, HD-RRMS while d varies from 3 to 5 (n, k at defaults).
#include <algorithm>
#include <string>
#include <vector>
#include "common/string_util.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  const size_t n = bench::DefaultN();
  const size_t k = std::max<size_t>(1, n / 100);
  bench::PrintFigureHeader(
      "fig23_24_bn_md_vary_d",
      "Figures 23 (time) + 24 (quality)",
      StrFormat("BN-like, n=%zu, k=%zu, vary d", n, k),
      bench::MdComparisonColumns("d"));

  const data::Dataset all = data::GenerateBnLike(n, 42);
  for (size_t d = 3; d <= 5; ++d) {
    bench::MdComparisonConfig config;
    config.label = std::to_string(d);
    config.k = k;
    config.run_mdrrr = bench::FullScale() || d <= 4;
    bench::RunMdComparisonRow(all.ProjectPrefix(d), config);
  }
  return 0;
}
