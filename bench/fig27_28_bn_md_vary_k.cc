// Figures 27 + 28: Blue-Nile-like dataset, MD (d=3) — time and quality of
// MDRC, MDRRR, HD-RRMS while k varies from 0.1% to 10% of n.
#include <algorithm>
#include <string>
#include <vector>
#include "common/string_util.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  const size_t n = bench::DefaultN();
  bench::PrintFigureHeader(
      "fig27_28_bn_md_vary_k",
      "Figures 27 (time) + 28 (quality)",
      StrFormat("BN-like, d=3, n=%zu, vary k", n),
      bench::MdComparisonColumns("k"));

  const data::Dataset ds = data::GenerateBnLike(n, 42).ProjectPrefix(3);
  for (double kp : {0.001, 0.01, 0.1}) {
    const size_t k =
        std::max<size_t>(1, static_cast<size_t>(kp * static_cast<double>(n)));
    bench::MdComparisonConfig config;
    config.label = std::to_string(k);
    config.k = k;
    bench::RunMdComparisonRow(ds, config);
  }
  return 0;
}
