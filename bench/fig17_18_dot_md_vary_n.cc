// Figures 17 + 18: DOT dataset, MD (d=3) — time and quality of MDRC, MDRRR
// and HD-RRMS while n varies; k = 1% of n, HD-RRMS gets MDRC's output size.
//
// Expected shape: MDRRR (K-SETr-bound) stops scaling, MDRC seconds at most,
// HD-RRMS reasonable time but rank-regret near n; MDRC/MDRRR rank-regret at
// or below k; all output sizes < 20.
#include <algorithm>
#include <string>
#include <vector>
#include "common/string_util.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  bench::PrintFigureHeader(
      "fig17_18_dot_md_vary_n",
      "Figures 17 (time) + 18 (quality)",
      "DOT-like, d=3, k=1% of n, vary n",
      bench::MdComparisonColumns("n"));

  const size_t full_max = 400000;
  const data::Dataset all =
      data::GenerateDotLike(bench::FullScale() ? full_max : 16000, 42)
          .ProjectPrefix(3);
  // The paper reports MDRRR not scaling to 100K (k-set discovery cost).
  const size_t mdrrr_cutoff = bench::FullScale() ? 40000 : 4000;

  for (size_t n : bench::NSweep(full_max)) {
    bench::MdComparisonConfig config;
    config.label = std::to_string(n);
    config.k = std::max<size_t>(1, n / 100);
    config.run_mdrrr = n <= mdrrr_cutoff;
    bench::RunMdComparisonRow(all.Head(n), config);
  }
  return 0;
}
