// Figures 9 + 10: DOT dataset, 2D — efficiency and effectiveness of 2DRRR,
// MDRRR and MDRC while the dataset size n varies. k = 1% of n.
//
// Expected shape (paper §6.2): 2DRRR and MDRRR share the quadratic sweep and
// stop scaling (the paper cuts them at 100K); MDRC stays near-flat. All
// three keep the measured rank-regret at or below k (green line), and 2DRRR
// attains the optimal output size.
#include <algorithm>
#include <string>
#include <vector>
#include "common/string_util.h"
#include "common/timer.h"
#include "core/kset_enum2d.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  bench::PrintFigureHeader(
      "fig09_10_dot_2d_vary_n",
      "Figures 9 (time) + 10 (quality)",
      "DOT-like, d=2, k=1% of n, vary n",
      "algorithm,n,time_sec,exact_rank_regret,output_size");

  const size_t full_max = 400000;
  const data::Dataset all =
      data::GenerateDotLike(bench::FullScale() ? full_max : 8000, 42)
          .ProjectPrefix(2);
  // The quadratic sweep algorithms get the same cutoff as in the paper.
  const size_t sweep_cutoff = bench::FullScale() ? 100000 : 8000;

  for (size_t n : bench::NSweep2D(full_max)) {
    const data::Dataset ds = all.Head(n);
    const size_t k = std::max<size_t>(1, n / 100);

    auto report = [&](const char* name, double seconds,
                      const std::vector<int32_t>& rep) {
      // Exact (sweep) evaluation is itself quadratic; fall back to the
      // sampled estimator past the cutoff.
      int64_t regret_value = 0;
      if (ds.size() <= sweep_cutoff) {
        Result<int64_t> regret = eval::ExactRankRegret2D(ds, rep);
        RRR_CHECK_OK(regret.status());
        regret_value = *regret;
      } else {
        eval::SampledRankRegretOptions eval_opts;
        eval_opts.num_functions = bench::EvalFunctions();
        Result<int64_t> regret = eval::SampledRankRegret(ds, rep, eval_opts);
        RRR_CHECK_OK(regret.status());
        regret_value = *regret;
      }
      bench::PrintRow({name, std::to_string(n), StrFormat("%.4f", seconds),
                       StrFormat("%lld", static_cast<long long>(regret_value)),
                       std::to_string(rep.size())});
    };

    if (n <= sweep_cutoff) {
      Stopwatch timer;
      Result<std::vector<int32_t>> rep = core::Solve2dRrr(ds, k);
      RRR_CHECK_OK(rep.status());
      report("2DRRR", timer.ElapsedSeconds(), *rep);

      timer.Restart();
      Result<core::KSetCollection> ksets = core::EnumerateKSets2D(ds, k);
      RRR_CHECK_OK(ksets.status());
      Result<std::vector<int32_t>> mdrrr = core::SolveMdrrr(ds, *ksets);
      RRR_CHECK_OK(mdrrr.status());
      report("MDRRR", timer.ElapsedSeconds(), *mdrrr);
    } else {
      bench::PrintRow({"2DRRR", std::to_string(n), "did-not-scale", "-",
                       "-"});
      bench::PrintRow({"MDRRR", std::to_string(n), "did-not-scale", "-",
                       "-"});
    }

    Stopwatch timer;
    Result<std::vector<int32_t>> mdrc = core::SolveMdrc(ds, k);
    RRR_CHECK_OK(mdrc.status());
    report("MDRC", timer.ElapsedSeconds(), *mdrc);
  }
  return 0;
}
