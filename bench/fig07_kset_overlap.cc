// Figure 7: overlap between the k-sets of a 20-item 2D sample of the DOT
// dataset. Prints the item x k-set membership matrix; dense columns (items
// shared by nearly all k-sets) are the motivation for MDRC (Section 5.3).
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/kset_enum2d.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  bench::PrintFigureHeader(
      "fig07_kset_overlap", "Figure 7", "k-set overlap, 20-item DOT-like sample, d=2, k=2",
      "item,memberships,sets_total");

  const data::Dataset dot = data::GenerateDotLike(10000, 7).ProjectPrefix(2);
  Rng rng(7);
  const data::Dataset sample = dot.Sample(20, &rng);
  Result<core::KSetCollection> ksets = core::EnumerateKSets2D(sample, 2);
  RRR_CHECK_OK(ksets.status());

  // Membership matrix, one row per item that occurs in any k-set.
  std::printf("# matrix: rows = items, cols = k-sets (1 = member)\n");
  size_t max_memberships = 0;
  for (size_t id = 0; id < sample.size(); ++id) {
    size_t memberships = 0;
    std::string row;
    for (const core::KSet& s : ksets->sets()) {
      const bool member =
          std::binary_search(s.ids.begin(), s.ids.end(),
                             static_cast<int32_t>(id));
      row += member ? '1' : '0';
      memberships += member ? 1 : 0;
    }
    if (memberships == 0) continue;
    std::printf("# item %2zu: %s\n", id, row.c_str());
    bench::PrintRow({std::to_string(id), std::to_string(memberships),
                     std::to_string(ksets->size())});
    max_memberships = std::max(max_memberships, memberships);
  }
  std::printf(
      "# densest item appears in %zu of %zu k-sets (paper: one item in all "
      "but one)\n",
      max_memberships, ksets->size());
  return 0;
}
