// Figures 21 + 22: DOT dataset, MD — time and quality of MDRC, MDRRR,
// HD-RRMS while the number of attributes d varies from 3 to 6
// (n and k fixed to the defaults).
//
// Expected shape: MDRRR cost explodes with d (k-set count); MDRC and
// HD-RRMS stay fast; HD-RRMS rank-regret in the thousands while
// MDRC/MDRRR honor k; output sizes < 40.
#include <algorithm>
#include <string>
#include <vector>
#include "common/string_util.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  const size_t n = bench::DefaultN();
  const size_t k = std::max<size_t>(1, n / 100);
  bench::PrintFigureHeader(
      "fig21_22_dot_md_vary_d",
      "Figures 21 (time) + 22 (quality)",
      StrFormat("DOT-like, n=%zu, k=%zu, vary d", n, k),
      bench::MdComparisonColumns("d"));

  const data::Dataset all = data::GenerateDotLike(n, 42);
  const size_t max_d = bench::FullScale() ? 6 : 5;
  for (size_t d = 3; d <= max_d; ++d) {
    bench::MdComparisonConfig config;
    config.label = std::to_string(d);
    config.k = k;
    // K-SETr's collection growth makes MDRRR the slow one as d rises; keep
    // it runnable but skip at the top end in scaled mode.
    config.run_mdrrr = bench::FullScale() || d <= 4;
    bench::RunMdComparisonRow(all.ProjectPrefix(d), config);
  }
  return 0;
}
