// Threads x kernel-path x block-skip scaling bench: the multi-core and
// block-max-pruning perf story over the scanning entry points
// (TopKScan / CountOutranking / MaxScore). Emits BENCH_scaling.json.
//
// Workloads are deliberately skyband-hostile (uniform k=1000,
// anti-correlated data — where the candidate-index declines and full scans
// are all that's left) and function families are the solver-shaped sparse
// probes where block bounds are tight:
//   corner_topk   — top-k at the axis corners + the diagonal (the MDRC
//                   level-1 corner / convex-maxima certification probes)
//   rank_certify  — CountOutranking at each probe's exact top-1 (the
//                   evaluators' rank-certification shape: a near-top
//                   reference makes almost every block provably hopeless)
//   maxscore      — the regret-ratio numerator scan; the running max
//                   saturates early and the tail of the scan skips
// Dense random functions are also represented (corner_topk includes the
// diagonal) so the numbers show where pruning does NOT fire: per-block
// column maxima of d independent columns are far above any top-k
// threshold, and such blocks always scan.
//
// Axes swept per workload:
//   path    — scalar | avx2 | avx512 (whatever the host supports), pinned
//             in-process via ForceScoreKernelPath
//   threads — 1, 2, 4 worker threads over the function tasks (flat on a
//             1-CPU container; the axis is recorded for multi-core runs)
//   skip    — BlockSkip::kForceOff (in-run baseline) vs kForceOn
// Every config's outputs are checked bit-identical to the first config's
// (the identical column is CHECKed, not asserted after the fact): skipping
// and path choice never change results, only wall time.
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/column_blocks.h"
#include "data/generators.h"
#include "figure_util.h"
#include "geometry/vec.h"
#include "topk/score_kernel.h"
#include "topk/scoring.h"

namespace {

using namespace rrr;

/// Tasks per config: each function probe is replicated so the ParallelFor
/// has enough grains for the threads axis to mean something.
constexpr size_t kReplicas = 8;

data::Dataset MakeDataset(const std::string& dist, size_t n, size_t d) {
  if (dist == "uniform") return data::GenerateUniform(n, d, 42);
  return data::GenerateAnticorrelated(n, d, 42);
}

data::ColumnBlocks MustBuild(const data::Dataset& ds) {
  Result<data::ColumnBlocks> blocks = data::ColumnBlocks::Build(ds, 1);
  RRR_CHECK_OK(blocks.status());
  return std::move(blocks).value();
}

/// The sparse probe family: the d axis corners plus the diagonal — the
/// convex-maxima certification probes, and the corner set MDRC's first
/// partition level evaluates.
std::vector<topk::LinearFunction> CornerProbes(size_t d) {
  std::vector<topk::LinearFunction> probes;
  for (size_t j = 0; j <= d; ++j) {
    geometry::Vec w(d, j == d ? 1.0 / static_cast<double>(d) : 0.0);
    if (j < d) w[j] = 1.0;
    probes.emplace_back(std::move(w));
  }
  return probes;
}

struct ConfigResult {
  double seconds = 0.0;
  double checksum = 0.0;
  uint64_t blocks_scanned = 0;
  uint64_t blocks_skipped = 0;
};

/// Times `pass` (best of reps, one warm-up) and collects one stats pass.
/// `pass` runs all probe tasks under `threads` and returns a checksum;
/// every call must produce the identical checksum (bit-identity).
template <typename Pass>
ConfigResult RunConfig(size_t reps, const Pass& pass) {
  ConfigResult out;
  out.checksum = pass();  // warm-up
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch timer;
    const double check = pass();
    const double t = timer.ElapsedSeconds();
    RRR_CHECK(check == out.checksum) << "checksum drifted across reps";
    if (r == 0 || t < best) best = t;
  }
  out.seconds = best;
  const topk::ScanStats before = topk::ScanCountersSnapshot();
  pass();  // dedicated stats pass (one full sweep's worth of counters)
  const topk::ScanStats after = topk::ScanCountersSnapshot();
  out.blocks_scanned = after.blocks_scanned - before.blocks_scanned;
  out.blocks_skipped = after.blocks_skipped - before.blocks_skipped;
  return out;
}

void Row(const std::string& workload, const std::string& dist, size_t n,
         size_t d, size_t k, const char* path, size_t threads,
         bool skip_on, const ConfigResult& r, double speedup) {
  const uint64_t total = r.blocks_scanned + r.blocks_skipped;
  const double frac =
      total == 0 ? 0.0
                 : static_cast<double>(r.blocks_skipped) /
                       static_cast<double>(total);
  bench::PrintRow({workload, dist, StrFormat("%zu", n), StrFormat("%zu", d),
                   StrFormat("%zu", k), path, StrFormat("%zu", threads),
                   skip_on ? "on" : "off", StrFormat("%.5f", r.seconds),
                   StrFormat("%llu",
                             static_cast<unsigned long long>(r.blocks_scanned)),
                   StrFormat("%llu",
                             static_cast<unsigned long long>(r.blocks_skipped)),
                   StrFormat("%.3f", frac), StrFormat("%.6g", r.checksum),
                   StrFormat("%.2f", speedup), "1"});
}

/// The paths this host can actually run, widest last.
std::vector<topk::ScoreKernelPath> HostPaths() {
  std::vector<topk::ScoreKernelPath> paths = {
      topk::ScoreKernelPath::kScalarBlocked};
  if (topk::ForceScoreKernelPath(topk::ScoreKernelPath::kAvx2) ==
      topk::ScoreKernelPath::kAvx2) {
    paths.push_back(topk::ScoreKernelPath::kAvx2);
  }
  if (topk::ForceScoreKernelPath(topk::ScoreKernelPath::kAvx512) ==
      topk::ScoreKernelPath::kAvx512) {
    paths.push_back(topk::ScoreKernelPath::kAvx512);
  }
  return paths;
}

constexpr size_t kThreadsAxis[] = {1, 2, 4};

/// Sweeps path x threads x skip over `pass(threads, skip)` and prints one
/// row per config, with the same-(path, threads) skip-off time as the
/// in-run speedup baseline.
template <typename Pass>
void SweepConfigs(const std::string& workload, const std::string& dist,
                  size_t n, size_t d, size_t k, size_t reps,
                  const Pass& pass) {
  for (topk::ScoreKernelPath path : HostPaths()) {
    const topk::ScoreKernelPath installed = topk::ForceScoreKernelPath(path);
    RRR_CHECK(installed == path);
    const char* path_name = topk::ScoreKernelPathName(path);
    for (size_t threads : kThreadsAxis) {
      const ConfigResult off = RunConfig(
          reps, [&] { return pass(threads, topk::BlockSkip::kForceOff); });
      const ConfigResult on = RunConfig(
          reps, [&] { return pass(threads, topk::BlockSkip::kForceOn); });
      RRR_CHECK(on.checksum == off.checksum)
          << workload << ": skip-on diverged from skip-off";
      Row(workload, dist, n, d, k, path_name, threads, false, off, 1.0);
      Row(workload, dist, n, d, k, path_name, threads, true, on,
          on.seconds > 0.0 ? off.seconds / on.seconds : 0.0);
    }
  }
}

/// corner_topk: TopKScan at every corner probe. The per-task results are
/// pinned against the first config's (ids, in order — bit-identity).
void CornerTopK(const std::string& dist, size_t n, size_t d, size_t k,
                size_t reps) {
  const data::Dataset ds = MakeDataset(dist, n, d);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const std::vector<topk::LinearFunction> probes = CornerProbes(d);
  std::vector<std::vector<int32_t>> reference(probes.size());
  std::atomic<bool> have_reference{false};

  SweepConfigs(
      "corner_topk", dist, n, d, k, reps,
      [&](size_t threads, topk::BlockSkip skip) -> double {
        std::atomic<uint64_t> check{0};
        ParallelFor(threads, probes.size() * kReplicas, [&](size_t task) {
          const size_t p = task % probes.size();
          const std::vector<int32_t> ids =
              topk::TopKScan(blocks, probes[p], k, skip);
          if (task < probes.size()) {
            if (!have_reference.load(std::memory_order_acquire)) {
              reference[p] = ids;
            } else {
              RRR_CHECK(ids == reference[p])
                  << "corner_topk: result diverged on probe " << p;
            }
          }
          check.fetch_add(static_cast<uint64_t>(ids.front()) +
                              static_cast<uint64_t>(ids.back()),
                          std::memory_order_relaxed);
        });
        have_reference.store(true, std::memory_order_release);
        return static_cast<double>(check.load() / kReplicas);
      });
}

/// rank_certify: CountOutranking at each probe's exact top-1 — the rank
/// certification the evaluators run against a good representative.
void RankCertify(const std::string& dist, size_t n, size_t d, size_t reps) {
  const data::Dataset ds = MakeDataset(dist, n, d);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const std::vector<topk::LinearFunction> probes = CornerProbes(d);
  // Reference (score, id) per probe: its exact top-1 (skip-off; identical
  // either way, but the references must not depend on the sweep order).
  std::vector<int32_t> top_id(probes.size());
  std::vector<double> top_score(probes.size());
  for (size_t p = 0; p < probes.size(); ++p) {
    top_id[p] = topk::TopKScan(blocks, probes[p], 1,
                               topk::BlockSkip::kForceOff)
                    .front();
    top_score[p] = probes[p].Score(ds.row(static_cast<size_t>(top_id[p])));
  }
  std::vector<int64_t> reference(probes.size());
  std::atomic<bool> have_reference{false};

  SweepConfigs(
      "rank_certify", dist, n, d, /*k=*/1, reps,
      [&](size_t threads, topk::BlockSkip skip) -> double {
        std::atomic<uint64_t> check{0};
        ParallelFor(threads, probes.size() * kReplicas, [&](size_t task) {
          const size_t p = task % probes.size();
          const int64_t outranking = topk::CountOutranking(
              blocks, probes[p], top_score[p], top_id[p], skip);
          if (task < probes.size()) {
            if (!have_reference.load(std::memory_order_acquire)) {
              reference[p] = outranking;
            } else {
              RRR_CHECK(outranking == reference[p])
                  << "rank_certify: count diverged on probe " << p;
            }
          }
          check.fetch_add(static_cast<uint64_t>(outranking + 1),
                          std::memory_order_relaxed);
        });
        have_reference.store(true, std::memory_order_release);
        return static_cast<double>(check.load() / kReplicas);
      });
}

/// maxscore: the regret-ratio numerator scan at every corner probe.
void MaxScoreSweep(const std::string& dist, size_t n, size_t d, size_t reps) {
  const data::Dataset ds = MakeDataset(dist, n, d);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const std::vector<topk::LinearFunction> probes = CornerProbes(d);
  std::vector<double> reference(probes.size());
  std::atomic<bool> have_reference{false};

  SweepConfigs(
      "maxscore", dist, n, d, /*k=*/1, reps,
      [&](size_t threads, topk::BlockSkip skip) -> double {
        std::atomic<uint64_t> check{0};
        ParallelFor(threads, probes.size() * kReplicas, [&](size_t task) {
          const size_t p = task % probes.size();
          const double best = topk::MaxScore(blocks, probes[p], skip);
          if (task < probes.size()) {
            if (!have_reference.load(std::memory_order_acquire)) {
              reference[p] = best;
            } else {
              RRR_CHECK(best == reference[p])
                  << "maxscore: max diverged on probe " << p;
            }
          }
          // Fixed-point fold keeps the checksum exact across threads.
          check.fetch_add(static_cast<uint64_t>(best * 1e6),
                          std::memory_order_relaxed);
        });
        have_reference.store(true, std::memory_order_release);
        return static_cast<double>(check.load() / kReplicas);
      });
}

}  // namespace

int main() {
  bench::PrintFigureHeader(
      "scaling", "scaling",
      "block-max pruned scans: threads x path x skip on/off "
      "(skip-off is the in-run baseline; identical=1 means the config's "
      "outputs matched the reference bit-for-bit)",
      "workload,dist,n,d,k,path,threads,skip,seconds,blocks_scanned,"
      "blocks_skipped,skip_frac,checksum,speedup_vs_skipoff,identical");

  const bool full = bench::FullScale();
  const size_t n = full ? 1'000'000 : 200'000;
  const size_t reps = full ? 7 : 5;

  // The acceptance workloads: skyband-hostile top-k (uniform k=1000,
  // anti-correlated) where the candidate index declines and block skipping
  // is the only pruning left.
  CornerTopK("uniform", n, 6, 1000, reps);
  CornerTopK("anticorrelated", n, 4, 100, reps);
  RankCertify("uniform", n, 8, reps);
  MaxScoreSweep("anticorrelated", n, 6, reps);
  return 0;
}
