#ifndef RRR_BENCH_BENCH_JSON_H_
#define RRR_BENCH_BENCH_JSON_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace rrr {
namespace bench {

/// \brief Machine-readable sink for bench results: collects the same rows
/// the drivers print as CSV and writes them as `BENCH_<slug>.json` when the
/// process exits.
///
/// This is the perf-trajectory record: every fig*/driver run leaves a JSON
/// artifact that later PRs (and CI) can diff for regressions. The file is
/// written to $RRR_BENCH_JSON_DIR (default: the working directory); set
/// RRR_BENCH_JSON=0 to disable emission entirely.
///
/// Schema:
/// {
///   "bench": "<slug>",                 // stable driver name
///   "title": "<human setting>",
///   "scale": "full" | "laptop",
///   "threads_available": N,            // hardware concurrency of the host
///   "columns": ["algorithm", "n", ...],
///   "rows": [ {"algorithm": "MDRC", "n": 100000, "time_sec": 1.23, ...} ]
/// }
/// Cells that parse as finite numbers are emitted as JSON numbers, all
/// others as strings.
class BenchJson {
 public:
  /// Process-wide collector used by figure_util's header/row helpers.
  static BenchJson& Global();

  /// Starts a report: remembers the slug/title and registers the atexit
  /// writer (first call only).
  void Begin(const std::string& slug, const std::string& title);

  /// Declares the column names subsequent AddRow calls pair up with.
  void SetColumns(const std::vector<std::string>& columns);

  /// Records one result row (same cells the CSV printer shows).
  void AddRow(const std::vector<std::string>& cells);

  /// True when emission is enabled (RRR_BENCH_JSON != "0") and Begin ran.
  bool active() const;

  /// Writes BENCH_<slug>.json; returns the path written. Called
  /// automatically at exit, but drivers may call it eagerly to report the
  /// path. Subsequent rows are appended and rewritten at exit.
  Result<std::string> WriteFile();

 private:
  bool begun_ = false;
  bool disabled_ = false;
  std::string slug_;
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// True when `s` is a valid JSON number literal (so it can be emitted
/// unquoted exactly as printed).
bool IsJsonNumber(const std::string& s);

}  // namespace bench
}  // namespace rrr

#endif  // RRR_BENCH_BENCH_JSON_H_
