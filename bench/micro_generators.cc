// Micro-benchmarks for the workload generators (they sit on the critical
// path of every figure bench).
#include <benchmark/benchmark.h>

#include "data/generators.h"

namespace {

void BM_GenerateUniform(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr::data::GenerateUniform(n, 4, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GenerateUniform)->Arg(10000)->Arg(100000);

void BM_GenerateDotLike(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr::data::GenerateDotLike(n, 2));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GenerateDotLike)->Arg(10000)->Arg(100000);

void BM_GenerateBnLike(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr::data::GenerateBnLike(n, 3));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GenerateBnLike)->Arg(10000)->Arg(100000);

void BM_GenerateAnticorrelated(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrr::data::GenerateAnticorrelated(n, 4, 4));
  }
}
BENCHMARK(BM_GenerateAnticorrelated)->Arg(10000)->Arg(100000);

}  // namespace
