#include "bench_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/parallel.h"
#include "common/string_util.h"

namespace rrr {
namespace bench {

namespace {

bool EmissionDisabledByEnv() {
  const char* env = std::getenv("RRR_BENCH_JSON");
  return env != nullptr && std::string(env) == "0";
}

std::string OutputDir() {
  const char* env = std::getenv("RRR_BENCH_JSON_DIR");
  return (env != nullptr && env[0] != '\0') ? env : ".";
}

void WriteGlobalAtExit() {
  if (!BenchJson::Global().active()) return;
  Result<std::string> path = BenchJson::Global().WriteFile();
  if (path.ok()) {
    std::fprintf(stderr, "# wrote %s\n", path->c_str());
  } else {
    std::fprintf(stderr, "# bench json: %s\n",
                 path.status().ToString().c_str());
  }
}

}  // namespace

BenchJson& BenchJson::Global() {
  static BenchJson* instance = new BenchJson();
  return *instance;
}

void BenchJson::Begin(const std::string& slug, const std::string& title) {
  disabled_ = EmissionDisabledByEnv();
  slug_ = slug;
  title_ = title;
  rows_.clear();
  if (!begun_) {
    begun_ = true;
    std::atexit(WriteGlobalAtExit);
  }
}

void BenchJson::SetColumns(const std::vector<std::string>& columns) {
  columns_ = columns;
}

void BenchJson::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

bool BenchJson::active() const { return begun_ && !disabled_; }

Result<std::string> BenchJson::WriteFile() {
  if (!active()) return Status::FailedPrecondition("bench json inactive");
  const std::string path = OutputDir() + "/BENCH_" + slug_ + ".json";
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const char* env_full = std::getenv("RRR_BENCH_FULL");
  const bool full = env_full != nullptr && std::string(env_full) == "1";
  out << "{\n";
  out << "  \"bench\": \"" << JsonEscape(slug_) << "\",\n";
  out << "  \"title\": \"" << JsonEscape(title_) << "\",\n";
  out << "  \"scale\": \"" << (full ? "full" : "laptop") << "\",\n";
  out << "  \"threads_available\": " << HardwareConcurrency() << ",\n";
  out << "  \"columns\": [";
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (j > 0) out << ", ";
    out << '"' << JsonEscape(columns_[j]) << '"';
  }
  out << "],\n";
  out << "  \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {";
    const std::vector<std::string>& cells = rows_[i];
    const size_t fields = std::min(cells.size(), columns_.size());
    for (size_t j = 0; j < fields; ++j) {
      if (j > 0) out << ", ";
      out << '"' << JsonEscape(columns_[j]) << "\": ";
      if (IsJsonNumber(cells[j])) {
        out << cells[j];
      } else {
        out << '"' << JsonEscape(cells[j]) << '"';
      }
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  if (!out.good()) return Status::IoError("write failed: " + path);
  return path;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x",
                           static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool IsJsonNumber(const std::string& s) {
  // JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  size_t i = 0;
  const size_t n = s.size();
  if (n == 0) return false;
  if (s[i] == '-') ++i;
  if (i == n || !std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  if (s[i] == '0' && i + 1 < n &&
      std::isdigit(static_cast<unsigned char>(s[i + 1]))) {
    return false;  // leading zeros are not JSON numbers
  }
  while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i < n && s[i] == '.') {
    ++i;
    if (i == n || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
    while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (i == n || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
    while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  return i == n;
}

}  // namespace bench
}  // namespace rrr
