// Micro-benchmarks for the LP substrate: the separation LP dominates exact
// k-set graph enumeration (O(nk) solves per k-set).
#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "lp/separation.h"
#include "lp/simplex.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace {

using rrr::data::Dataset;
using rrr::data::GenerateUniform;

void BM_SeparationLp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  const size_t k = 5;
  const Dataset ds = GenerateUniform(n, d, 1);
  // A genuine k-set (top-k of the all-ones function): worst case for the
  // solver because the LP runs to optimality.
  rrr::geometry::Vec w(d, 1.0);
  const std::vector<int32_t> inside =
      rrr::topk::TopKSet(ds, rrr::topk::LinearFunction(w), k);
  for (auto _ : state) {
    auto sep = rrr::lp::FindSeparatingWeights(ds.flat(), n, d, inside);
    benchmark::DoNotOptimize(sep);
  }
}
BENCHMARK(BM_SeparationLp)
    ->Args({32, 2})
    ->Args({128, 3})
    ->Args({512, 3})
    ->Args({128, 6});

void BM_SimplexDense(benchmark::State& state) {
  // A box LP with m constraints over v variables.
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t v = static_cast<size_t>(state.range(1));
  rrr::lp::LpProblem p;
  p.num_vars = v;
  p.objective.assign(v, 1.0);
  for (size_t i = 0; i < m; ++i) {
    rrr::lp::Constraint c;
    c.coeffs.assign(v, 0.0);
    for (size_t j = 0; j < v; ++j) {
      c.coeffs[j] = static_cast<double>((i + j) % 7 + 1);
    }
    c.sense = rrr::lp::Sense::kLe;
    c.rhs = 10.0 + static_cast<double>(i % 5);
    p.constraints.push_back(std::move(c));
  }
  for (auto _ : state) {
    auto sol = rrr::lp::Solve(p);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexDense)->Args({50, 10})->Args({200, 20})->Args({500, 10});

}  // namespace
