// Micro-benchmarks for the 2D angular sweep engine: event throughput is
// what bounds 2DRRR and 2D k-set enumeration.
#include <benchmark/benchmark.h>

#include "core/find_ranges.h"
#include "core/kset_enum2d.h"
#include "core/sweep.h"
#include "data/generators.h"

namespace {

using rrr::data::Dataset;
using rrr::data::GenerateUniform;

void BM_FullSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset ds = GenerateUniform(n, 2, 1);
  size_t events = 0;
  for (auto _ : state) {
    rrr::core::AngularSweep sweep(ds);
    events = sweep.Run([](const rrr::core::SweepEvent&) { return true; });
    benchmark::DoNotOptimize(events);
  }
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events));
}
BENCHMARK(BM_FullSweep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FindRanges(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const Dataset ds = GenerateUniform(n, 2, 2);
  for (auto _ : state) {
    auto ranges = rrr::core::FindRanges(ds, k);
    benchmark::DoNotOptimize(ranges);
  }
}
BENCHMARK(BM_FindRanges)->Args({1024, 10})->Args({4096, 40});

void BM_KSetEnum2D(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const Dataset ds = GenerateUniform(n, 2, 3);
  for (auto _ : state) {
    auto ksets = rrr::core::EnumerateKSets2D(ds, k);
    benchmark::DoNotOptimize(ksets);
  }
}
BENCHMARK(BM_KSetEnum2D)->Args({1024, 10})->Args({4096, 40});

}  // namespace
