// Blocked columnar scoring-kernel bench: the raw full-scan scoring loop —
// the innermost loop of every solver — timed as a scalar row loop vs the
// blocked-scalar kernel vs the SIMD kernel, across n x d and the standard
// data distributions, plus fused top-k scans and end-to-end engine numbers
// showing how the kernel compounds with (and degrades gracefully without)
// the k-skyband pruning layer. The committed BENCH_kernel.json is this
// driver's output (NOTE: measured in the 1-CPU bench container, like every
// committed BENCH file — multi-core hardware widens the engine numbers).
//
// Scan variants:
//   row-scalar      — f.Score(row) per tuple over row-major storage
//   blocked-scalar  — ScoreBlockScalar over the columnar mirror
//   blocked-simd    — ScoreBlockSimd (AVX2) when the host supports it
//   blocked         — the runtime-dispatched production path
// Scores are bit-identical across all four (tests/topk/score_kernel_test.cc
// pins this); rows differ only in wall time.
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/candidate_index.h"
#include "core/evaluator.h"
#include "core/mdrc.h"
#include "data/column_blocks.h"
#include "data/generators.h"
#include "figure_util.h"
#include "topk/score_kernel.h"
#include "topk/scoring.h"
#include "topk/topk.h"

namespace {

using namespace rrr;

void Row(const std::string& scenario, const std::string& dist, size_t n,
         size_t d, const std::string& variant, double seconds,
         double checksum, double speedup) {
  bench::PrintRow({scenario, dist, StrFormat("%zu", n), StrFormat("%zu", d),
                   variant, StrFormat("%.5f", seconds),
                   StrFormat("%.6g", checksum), StrFormat("%.2f", speedup)});
}

data::Dataset MakeDataset(const std::string& dist, size_t n, size_t d) {
  if (dist == "uniform") return data::GenerateUniform(n, d, 42);
  if (dist == "correlated") return data::GenerateCorrelated(n, d, 42, 0.7);
  return data::GenerateAnticorrelated(n, d, 42);
}

data::ColumnBlocks MustBuild(const data::Dataset& ds) {
  Result<data::ColumnBlocks> blocks = data::ColumnBlocks::Build(ds, 1);
  RRR_CHECK_OK(blocks.status());
  return std::move(blocks).value();
}

/// Full-scan scoring throughput, consumer-shaped: score every row and fold
/// the scores (here: running max, i.e. exactly MaxScore / the regret-ratio
/// numerator) without materializing them — the shape of TopKScan,
/// CountOutranking, and MaxScore alike. The fold result doubles as a live
/// checksum and a cross-variant bit-identity witness.
void ScanScenario(const std::string& dist, size_t n, size_t d) {
  const data::Dataset ds = MakeDataset(dist, n, d);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const topk::LinearFunction f(Rng(7).UnitWeightVector(static_cast<int>(d)));
  const size_t reps =
      std::max<size_t>(5, 40'000'000 / std::max<size_t>(1, n * d));

  // Best-of-reps: the minimum pass time is the least noise-inflated
  // estimate on a shared container (scheduler preemptions only ever add
  // time, never subtract it).
  auto time_variant = [&](auto&& one_pass) {
    one_pass();  // warm-up (page-in, caches)
    double best = 0.0;
    for (size_t r = 0; r < reps; ++r) {
      Stopwatch timer;
      one_pass();
      const double t = timer.ElapsedSeconds();
      if (r == 0 || t < best) best = t;
    }
    return best;
  };

  double max_row = 0.0;
  const double t_row = time_variant([&] {
    double best = f.Score(ds.row(0));
    for (size_t i = 1; i < ds.size(); ++i) {
      best = std::max(best, f.Score(ds.row(i)));
    }
    max_row = best;
  });

  double max_blocked = 0.0;
  const double t_blocked =
      time_variant([&] { max_blocked = topk::MaxScore(blocks, f); });
  RRR_CHECK(max_row == max_blocked)
      << "bit-identity violated: " << max_row << " vs " << max_blocked;

  // Forced-scalar blocked pass (what non-AVX2 hosts run).
  const size_t num_blocks = blocks.num_blocks();
  double scratch[data::ColumnBlocks::kBlockRows];
  auto fold_blocks = [&](auto&& score_block) {
    double best = 0.0;
    bool first = true;
    for (size_t b = 0; b < num_blocks; ++b) {
      score_block(blocks.block(b), scratch);
      const size_t rows = blocks.block_rows(b);
      for (size_t lane = 0; lane < rows; ++lane) {
        if (first || scratch[lane] > best) {
          best = scratch[lane];
          first = false;
        }
      }
    }
    return best;
  };
  const double t_scalar_blocked = time_variant([&] {
    max_blocked = fold_blocks([&](const double* cols, double* out) {
      topk::ScoreBlockScalar(f.weights().data(), d, cols, out);
    });
  });
  RRR_CHECK(max_row == max_blocked);

  Row("scan", dist, n, d, "row-scalar", t_row, max_row, 1.0);
  Row("scan", dist, n, d, "blocked-scalar", t_scalar_blocked, max_row,
      t_row / t_scalar_blocked);
  Row("scan", dist, n, d,
      std::string("blocked-") +
          topk::ScoreKernelPathName(topk::ActiveScoreKernelPath()),
      t_blocked, max_row, t_row / t_blocked);

  const bool simd_available = topk::ScoreBlockSimd(f.weights().data(), d,
                                                   blocks.block(0), scratch);
  if (simd_available && topk::ActiveScoreKernelPath() ==
                            topk::ScoreKernelPath::kScalarBlocked) {
    // Dispatch was forced scalar (RRR_SCORE_KERNEL=scalar) but the CPU can
    // do better: time the SIMD path explicitly.
    const double t_simd = time_variant([&] {
      max_blocked = fold_blocks([&](const double* cols, double* out) {
        topk::ScoreBlockSimd(f.weights().data(), d, cols, out);
      });
    });
    RRR_CHECK(max_row == max_blocked);
    Row("scan", dist, n, d, "blocked-simd", t_simd, max_row,
        t_row / t_simd);
  }
}

/// Fused top-k selection vs the legacy materialize-and-select scan.
void TopKScenario(const std::string& dist, size_t n, size_t d, size_t k) {
  const data::Dataset ds = MakeDataset(dist, n, d);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const topk::LinearFunction f(Rng(9).UnitWeightVector(static_cast<int>(d)));
  const size_t reps = std::max<size_t>(3, 2'000'000 / std::max<size_t>(1, n));

  std::vector<int32_t> legacy_ids;
  Stopwatch legacy_timer;
  for (size_t r = 0; r < reps; ++r) legacy_ids = topk::TopK(ds, f, k);
  const double t_legacy =
      legacy_timer.ElapsedSeconds() / static_cast<double>(reps);

  std::vector<int32_t> fused_ids;
  Stopwatch fused_timer;
  for (size_t r = 0; r < reps; ++r) fused_ids = topk::TopKScan(blocks, f, k);
  const double t_fused =
      fused_timer.ElapsedSeconds() / static_cast<double>(reps);
  RRR_CHECK(legacy_ids == fused_ids) << "top-k mismatch";

  Row("topk", dist, n, d, StrFormat("legacy-k%zu", k), t_legacy,
      static_cast<double>(legacy_ids.front()), 1.0);
  Row("topk", dist, n, d, StrFormat("fused-k%zu", k), t_fused,
      static_cast<double>(fused_ids.front()), t_legacy / t_fused);
}

/// End-to-end: the sampled evaluator (the heaviest pure-scan consumer),
/// with the mirror on/off crossed with the skyband index on/off — the
/// compound-effect and the no-regression-when-guarded rows.
void EvaluatorScenario(const std::string& dist, size_t n, size_t d, size_t k,
                       size_t num_functions) {
  const data::Dataset ds = MakeDataset(dist, n, d);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const topk::LinearFunction diagonal{geometry::Vec(d, 1.0)};
  const std::vector<int32_t> subset = topk::TopKSet(ds, diagonal, k, &blocks);
  const auto index_outcome = core::CandidateIndex::Create(ds, k);
  RRR_CHECK_OK(index_outcome.status());
  const auto index = index_outcome->index;

  core::SampledRegretOptions options;
  options.num_functions = num_functions;
  auto evaluate = [&](const core::CandidateIndex* candidates,
                      const data::ColumnBlocks* mirror) {
    Stopwatch timer;
    Result<int64_t> regret = core::SampledRankRegretEstimate(
        ds, subset, options, {}, candidates, nullptr, mirror);
    RRR_CHECK_OK(regret.status());
    return timer.ElapsedSeconds();
  };
  const double legacy = evaluate(nullptr, nullptr);
  const double kernel = evaluate(nullptr, &blocks);
  const double skyband = evaluate(index.get(), nullptr);
  const double compound = evaluate(index.get(), &blocks);
  Row("eval-sampled", dist, n, d, StrFormat("legacy-k%zu", k), legacy, 0.0,
      1.0);
  Row("eval-sampled", dist, n, d, StrFormat("kernel-k%zu", k), kernel, 0.0,
      legacy / kernel);
  Row("eval-sampled", dist, n, d,
      StrFormat("skyband%s-k%zu", index != nullptr ? "" : "-declined", k),
      skyband, 0.0, legacy / skyband);
  Row("eval-sampled", dist, n, d,
      StrFormat("kernel+skyband%s-k%zu", index != nullptr ? "" : "-declined",
                k),
      compound, 0.0, legacy / compound);
}

/// End-to-end MDRC: corner top-k probes through the kernel, with and
/// without the skyband index (fresh private corner cache per solve so the
/// scan cost is not hidden by memoization).
void MdrcScenario(const std::string& dist, size_t n, size_t d, size_t k) {
  const data::Dataset ds = MakeDataset(dist, n, d);
  const data::ColumnBlocks blocks = MustBuild(ds);
  const auto index_outcome = core::CandidateIndex::Create(ds, k);
  RRR_CHECK_OK(index_outcome.status());
  const auto index = index_outcome->index;
  auto solve = [&](const core::CandidateIndex* candidates,
                   const data::ColumnBlocks* mirror) {
    Stopwatch timer;
    Result<std::vector<int32_t>> rep = core::SolveMdrc(
        ds, k, {}, nullptr, {}, nullptr, candidates, mirror);
    RRR_CHECK_OK(rep.status());
    return timer.ElapsedSeconds();
  };
  const double legacy = solve(nullptr, nullptr);
  const double kernel = solve(nullptr, &blocks);
  const double compound = solve(index.get(), &blocks);
  Row("mdrc", dist, n, d, StrFormat("legacy-k%zu", k), legacy, 0.0, 1.0);
  Row("mdrc", dist, n, d, StrFormat("kernel-k%zu", k), kernel, 0.0,
      legacy / kernel);
  Row("mdrc", dist, n, d,
      StrFormat("kernel+skyband%s-k%zu", index != nullptr ? "" : "-declined",
                k),
      compound, 0.0, legacy / compound);
}

}  // namespace

int main() {
  bench::PrintFigureHeader(
      "kernel", "Blocked columnar scoring kernel",
      StrFormat(
          "raw full-scan scoring, fused top-k, and end-to-end consumers on "
          "the blocked columnar kernel vs the legacy row loops; dispatched "
          "path on this host: %s",
          topk::ScoreKernelPathName(topk::ActiveScoreKernelPath())),
      "scenario,distribution,n,d,variant,time_sec,checksum,"
      "speedup_vs_row_scalar");

  // Raw scan throughput across the n x d grid on all three distributions.
  // The distribution is irrelevant to the scan itself (every row is
  // scored); it is swept to document exactly that — including the
  // anticorrelated guard case regressing nowhere.
  for (const char* dist : {"uniform", "correlated", "anticorrelated"}) {
    for (size_t n : {size_t{10'000}, size_t{100'000}, size_t{1'000'000}}) {
      for (size_t d : {size_t{2}, size_t{4}, size_t{8}}) {
        ScanScenario(dist, n, d);
      }
    }
  }

  // Fused top-k selection.
  TopKScenario("uniform", 100'000, 4, 10);
  TopKScenario("uniform", 100'000, 4, 1000);
  TopKScenario("correlated", 100'000, 8, 100);

  // End-to-end consumers: kernel alone, skyband alone, compound — plus the
  // anticorrelated case where the skyband declines and the kernel is the
  // only thing still helping.
  EvaluatorScenario("correlated", 100'000, 4, 1000, 1000);
  EvaluatorScenario("uniform", 100'000, 4, 1000, 1000);
  EvaluatorScenario("anticorrelated", 100'000, 4, 1000, 200);
  MdrcScenario("uniform", 100'000, 4, 100);

  return 0;
}
