// Figures 19 + 20: Blue-Nile-like dataset, MD (d=3) — time and quality of
// MDRC, MDRRR, HD-RRMS while n varies (paper sweeps 1K..100K on BN).
#include <algorithm>
#include <string>
#include <vector>
#include "common/string_util.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  bench::PrintFigureHeader(
      "fig19_20_bn_md_vary_n",
      "Figures 19 (time) + 20 (quality)",
      "BN-like, d=3, k=1% of n, vary n",
      bench::MdComparisonColumns("n"));

  const size_t full_max = 100000;
  const data::Dataset all =
      data::GenerateBnLike(bench::FullScale() ? full_max : 16000, 42)
          .ProjectPrefix(3);
  const size_t mdrrr_cutoff = bench::FullScale() ? 40000 : 4000;

  for (size_t n : bench::NSweep(full_max)) {
    bench::MdComparisonConfig config;
    config.label = std::to_string(n);
    config.k = std::max<size_t>(1, n / 100);
    config.run_mdrrr = n <= mdrrr_cutoff;
    bench::RunMdComparisonRow(all.Head(n), config);
  }
  return 0;
}
