// Dynamic-data layer: incremental artifact maintenance vs rebuilding from
// scratch on every update.
//
// Workloads (per n, d = 3):
//   append_row     one-row Insert, averaged over a stream of inserts —
//                  incremental path: memcpy'd mirror tiles + O(n d)
//                  count extension vs a cold PreparedDataset + first-query
//                  artifact rebuild (O(n d) transpose + O(n^2 d) counts)
//   append_batch   64-row BatchAppend, same comparison
//   delete_row     one-row Delete — masked mirror + localized recounts vs
//                  the cold rebuild
//   query_after    Solve(k) immediately after an append, measuring what
//                  the carried-forward artifacts save the first query
//
// Both sides produce bit-identical artifacts (pinned by
// tests/core/dynamic_equivalence_test.cc); this driver measures only the
// time. The committed BENCH_updates.json is this driver's output on the
// 1-CPU CI container — wall-clock ratios there understate the parallel
// rebuild cost a multi-core host would pay.
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/dataset_updates.h"
#include "core/engine.h"
#include "data/generators.h"
#include "figure_util.h"

namespace {

using namespace rrr;

std::vector<std::vector<double>> ToRows(const data::Dataset& ds) {
  std::vector<std::vector<double>> rows;
  rows.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    const double* r = ds.row(i);
    rows.emplace_back(r, r + ds.dims());
  }
  return rows;
}

/// Forces the artifacts the dynamic layer maintains (columnar mirror +
/// always-outranker counts) to exist, the way a first query would.
void MaterializeArtifacts(const core::PreparedDataset& prepared, size_t k) {
  RRR_CHECK(prepared.SharedColumnBlocks(1).ok());
  RRR_CHECK(prepared.SharedCandidateIndex(k, 1).ok());
}

core::DynamicDatasetOptions DynOptions(bool incremental) {
  core::DynamicDatasetOptions options;
  options.incremental_artifacts = incremental;
  // Force the candidate build at bench sizes so the count maintenance is
  // actually exercised (the default heuristics decline below 4096 rows).
  options.prepared.candidate.min_dataset_size = 0;
  options.prepared.candidate.precheck_sample = 0;
  options.prepared.candidate.budget_slack_per_tuple = 0;
  options.prepared.candidate.max_band_fraction = 1.0;
  return options;
}

/// One update stream: `updates` ops against a DynamicDataset. With
/// `incremental`, artifacts carry forward; without, every published
/// version starts cold and `rematerialize` pays the rebuild a first query
/// would (the from-scratch baseline).
double RunStream(const data::Dataset& initial, size_t updates,
                 size_t batch_rows, bool deletes, bool incremental,
                 size_t k) {
  Result<std::shared_ptr<core::DynamicDataset>> dyn =
      core::DynamicDataset::Create(data::Dataset(initial),
                                   DynOptions(incremental));
  RRR_CHECK(dyn.ok()) << dyn.status().ToString();
  MaterializeArtifacts(*(*dyn)->Snapshot(), k);
  const data::Dataset pool =
      data::GenerateUniform(updates * batch_rows, initial.dims(), 99);
  const std::vector<std::vector<double>> pool_rows = ToRows(pool);

  Stopwatch timer;
  size_t next = 0;
  for (size_t u = 0; u < updates; ++u) {
    if (deletes) {
      RRR_CHECK((*dyn)->Delete(static_cast<int32_t>(u % 7)).ok());
    } else if (batch_rows == 1) {
      RRR_CHECK((*dyn)->Insert(pool_rows[next++]).ok());
    } else {
      std::vector<std::vector<double>> batch(
          pool_rows.begin() + static_cast<int64_t>(next),
          pool_rows.begin() + static_cast<int64_t>(next + batch_rows));
      next += batch_rows;
      RRR_CHECK((*dyn)->BatchAppend(batch).ok());
    }
    // The cost a first query pays on this version: nothing when the
    // artifacts carried forward, a full rebuild when they did not.
    MaterializeArtifacts(*(*dyn)->Snapshot(), k);
  }
  return timer.ElapsedSeconds();
}

void Case(const std::string& workload, const data::Dataset& initial,
          size_t updates, size_t batch_rows, bool deletes, size_t k) {
  const double incremental =
      RunStream(initial, updates, batch_rows, deletes, true, k);
  const double rebuild =
      RunStream(initial, updates, batch_rows, deletes, false, k);
  bench::PrintRow(
      {workload, StrFormat("%zu", initial.size()),
       StrFormat("%zu", initial.dims()), StrFormat("%zu", updates),
       StrFormat("%zu", deletes ? 1 : batch_rows),
       StrFormat("%.6f", incremental), StrFormat("%.6f", rebuild),
       StrFormat("%.1f", incremental > 0.0 ? rebuild / incremental : 0.0)});
}

}  // namespace

int main() {
  bench::PrintFigureHeader(
      "updates", "Dynamic updates",
      "incremental artifact maintenance vs from-scratch rebuild per "
      "update (d=3, forced candidate counts, mirror carried forward)",
      "workload,n,d,updates,rows_per_update,incremental_sec,rebuild_sec,"
      "speedup");

  const size_t full = bench::FullScale() ? 2 : 1;
  for (size_t n : {size_t{2000} * full, size_t{8000} * full}) {
    const data::Dataset initial = data::GenerateUniform(n, 3, 7);
    const size_t k = 10;
    Case("append_row", initial, 24, 1, false, k);
    Case("append_batch", initial, 12, 64, false, k);
    Case("delete_row", initial, 16, 1, true, k);
  }
  return 0;
}
