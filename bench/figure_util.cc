#include "figure_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "eval/rank_regret.h"

namespace rrr {
namespace bench {

bool FullScale() {
  const char* env = std::getenv("RRR_BENCH_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

size_t EvalFunctions() { return FullScale() ? 10000 : 1000; }

void PrintFigureHeader(const std::string& slug, const std::string& figure,
                       const std::string& title,
                       const std::string& columns) {
  std::printf("# %s\n", figure.c_str());
  std::printf("# %s\n", title.c_str());
  std::printf("# scale: %s (set RRR_BENCH_FULL=1 for paper-scale sweeps)\n",
              FullScale() ? "FULL" : "laptop default");
  std::printf("%s\n", columns.c_str());
  std::fflush(stdout);
  BenchJson::Global().Begin(slug, title);
  BenchJson::Global().SetColumns(Split(columns, ','));
}

void PrintRow(const std::vector<std::string>& cells) {
  std::printf("%s\n", Join(cells, ",").c_str());
  std::fflush(stdout);
  BenchJson::Global().AddRow(cells);
}

std::vector<size_t> NSweep(size_t full_max) {
  std::vector<size_t> sweep;
  const size_t max_n = FullScale() ? full_max : 16000;
  for (size_t n = 1000; n <= max_n; n *= 4) sweep.push_back(n);
  if (sweep.back() != max_n) sweep.push_back(max_n);
  return sweep;
}

std::vector<size_t> NSweep2D(size_t full_max) {
  if (!FullScale()) return {1000, 4000, 8000};
  std::vector<size_t> sweep;
  for (size_t n = 1000; n <= full_max; n *= 10) sweep.push_back(n);
  if (sweep.back() != full_max) sweep.push_back(full_max);
  return sweep;
}

size_t DefaultN() { return FullScale() ? 10000 : 2000; }

std::string MdComparisonColumns(const std::string& x) {
  return "algorithm," + x +
         ",time_sec,sampled_rank_regret,output_size,threads";
}

void RunMdComparisonRow(const data::Dataset& dataset,
                        const MdComparisonConfig& config) {
  const size_t threads = ResolveThreads(config.threads);
  const std::string threads_cell = StrFormat("%zu", threads);
  eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = EvalFunctions();
  eval_opts.seed = config.eval_seed;
  eval_opts.threads = threads;

  // MDRC.
  core::MdrcOptions mdrc_opts;
  mdrc_opts.threads = threads;
  Stopwatch timer;
  Result<std::vector<int32_t>> mdrc =
      core::SolveMdrc(dataset, config.k, mdrc_opts);
  const double mdrc_time = timer.ElapsedSeconds();
  RRR_CHECK_OK(mdrc.status());
  const int64_t mdrc_regret =
      *eval::SampledRankRegret(dataset, *mdrc, eval_opts);
  PrintRow({"MDRC", config.label, StrFormat("%.4f", mdrc_time),
            StrFormat("%lld", static_cast<long long>(mdrc_regret)),
            StrFormat("%zu", mdrc->size()), threads_cell});

  // MDRRR = K-SETr + hitting set (Section 6 pipeline).
  if (config.run_mdrrr) {
    core::KSetSamplerOptions sampler_opts;
    sampler_opts.threads = threads;
    timer.Restart();
    Result<std::vector<int32_t>> mdrrr =
        core::SolveMdrrrSampled(dataset, config.k, {}, sampler_opts);
    const double mdrrr_time = timer.ElapsedSeconds();
    RRR_CHECK_OK(mdrrr.status());
    const int64_t mdrrr_regret =
        *eval::SampledRankRegret(dataset, *mdrrr, eval_opts);
    PrintRow({"MDRRR", config.label, StrFormat("%.4f", mdrrr_time),
              StrFormat("%lld", static_cast<long long>(mdrrr_regret)),
              StrFormat("%zu", mdrrr->size()), threads_cell});
  } else {
    PrintRow({"MDRRR", config.label, "did-not-scale", "-", "-",
              threads_cell});
  }

  // HD-RRMS at MDRC's output size (the paper's comparison protocol).
  baseline::HdRrmsOptions hd_opts;
  hd_opts.num_functions = FullScale() ? 300 : 200;
  hd_opts.binary_search_steps = 12;
  timer.Restart();
  Result<baseline::HdRrmsResult> hd =
      baseline::SolveHdRrms(dataset, mdrc->size(), hd_opts);
  const double hd_time = timer.ElapsedSeconds();
  RRR_CHECK_OK(hd.status());
  const int64_t hd_regret =
      *eval::SampledRankRegret(dataset, hd->representative, eval_opts);
  PrintRow({"HD-RRMS", config.label, StrFormat("%.4f", hd_time),
            StrFormat("%lld", static_cast<long long>(hd_regret)),
            StrFormat("%zu", hd->representative.size()), threads_cell});
}

}  // namespace bench
}  // namespace rrr
