// rrr_loadgen: burst load generator for rrr_serverd. Registers a generated
// dataset, then drives three phases against a running daemon:
//
//   mixed    — N client threads issue a SOLVE/DUAL/EVAL mix back to back
//   deadline — queries carrying a ~1ms deadline behind a slow SLEEP, so
//              some must surface ERR code=deadline_exceeded
//   busy     — more concurrent SLEEPs than workers + queue_depth, so some
//              must surface the typed ERR code=busy rejection
//   fault    — failpoints armed over the wire (artifact builds always
//              fail, admission throws periodic io_errors); clients drive
//              retried SOLVEs and record how many replies were degraded
//              and how many retries the faults cost
//
// Per-phase counts and latency percentiles go to stdout as CSV and to
// BENCH_service.json via the shared BenchJson sink. Exit code is 0 only if
// every phase behaved (mixed saw no errors; deadline saw >=1
// deadline_exceeded; busy saw >=1 busy; fault saw >=1 degraded reply,
// >=1 retry, and no errors) — CI's smoke job keys off it.
//
// Usage:
//   rrr_loadgen --port=N [--host=127.0.0.1] [--clients=4] [--requests=40]
//               [--rows=2000] [--dims=3]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/mutex.h"
#include "service/client.h"

namespace {

using rrr::service::LineClient;
using rrr::service::Reply;

struct Flags {
  std::string host = "127.0.0.1";
  size_t port = 0;
  size_t clients = 4;
  size_t requests = 40;  // per client, mixed phase
  size_t rows = 2000;
  size_t dims = 3;
};

/// Outcome tallies for one phase; merged across client threads.
struct Tally {
  size_t ok = 0;
  size_t busy = 0;
  size_t deadline = 0;
  size_t errors = 0;
  size_t retries = 0;   // fault phase: retries the retry policy performed
  size_t degraded = 0;  // fault phase: OK replies flagged degraded=1
  std::vector<double> latencies_ms;

  void Absorb(const Tally& other) {
    ok += other.ok;
    busy += other.busy;
    deadline += other.deadline;
    errors += other.errors;
    retries += other.retries;
    degraded += other.degraded;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t idx = static_cast<size_t>(p * (values->size() - 1) + 0.5);
  return (*values)[std::min(idx, values->size() - 1)];
}

void FoldReply(const rrr::Result<Reply>& reply, Tally* tally) {
  if (!reply.ok()) {
    ++tally->errors;
    return;
  }
  if (reply.value().ok) {
    ++tally->ok;
    const std::string* degraded = reply.value().Find("degraded");
    if (degraded != nullptr && *degraded == "1") ++tally->degraded;
  } else if (reply.value().code == "busy") {
    ++tally->busy;
  } else if (reply.value().code == "deadline_exceeded") {
    ++tally->deadline;
  } else {
    ++tally->errors;
    std::fprintf(stderr, "rrr_loadgen: unexpected ERR code=%s msg=%s\n",
                 reply.value().code.c_str(), reply.value().msg.c_str());
  }
}

/// Sends one request and folds the outcome into `tally`.
void RunOne(LineClient* client, const std::string& line, Tally* tally) {
  const auto start = std::chrono::steady_clock::now();
  rrr::Result<Reply> reply = client->Request(line);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  tally->latencies_ms.push_back(ms);
  FoldReply(reply, tally);
}

/// RunOne through the client's retry policy, counting retries performed.
void RunOneWithRetry(LineClient* client, const std::string& line,
                     const rrr::service::RetryPolicy& policy, Tally* tally) {
  const auto start = std::chrono::steady_clock::now();
  size_t retries = 0;
  rrr::Result<Reply> reply = client->RequestWithRetry(line, policy, &retries);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  tally->latencies_ms.push_back(ms);
  tally->retries += retries;
  FoldReply(reply, tally);
}

/// Runs `fn(client_index, per-thread tally)` on `threads` connections and
/// merges the tallies.
template <typename Fn>
Tally FanOut(const Flags& flags, size_t threads, Fn fn) {
  Tally merged;
  rrr::Mutex mu;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    pool.emplace_back([&, i] {
      LineClient client;
      if (!client.Connect(flags.host, static_cast<uint16_t>(flags.port))
               .ok()) {
        rrr::MutexLock lock(mu);
        ++merged.errors;
        return;
      }
      Tally local;
      fn(i, &client, &local);
      rrr::MutexLock lock(mu);
      merged.Absorb(local);
    });
  }
  for (std::thread& t : pool) t.join();
  return merged;
}

void Report(const std::string& phase, size_t requests, Tally* tally,
            double seconds) {
  const double p50 = Percentile(&tally->latencies_ms, 0.50);
  const double p95 = Percentile(&tally->latencies_ms, 0.95);
  const double qps = seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  char p50s[32], p95s[32], secs[32], qpss[32];
  std::snprintf(p50s, sizeof(p50s), "%.3f", p50);
  std::snprintf(p95s, sizeof(p95s), "%.3f", p95);
  std::snprintf(secs, sizeof(secs), "%.3f", seconds);
  std::snprintf(qpss, sizeof(qpss), "%.1f", qps);
  std::printf("%s,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%s,%s,%s,%s\n", phase.c_str(),
              requests, tally->ok, tally->busy, tally->deadline,
              tally->errors, tally->retries, tally->degraded, p50s, p95s,
              secs, qpss);
  rrr::bench::BenchJson::Global().AddRow(
      {phase, std::to_string(requests), std::to_string(tally->ok),
       std::to_string(tally->busy), std::to_string(tally->deadline),
       std::to_string(tally->errors), std::to_string(tally->retries),
       std::to_string(tally->degraded), p50s, p95s, secs, qpss});
}

bool ParseSizeFlag(const char* arg, const char* name, size_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = static_cast<size_t>(std::strtoull(arg + len + 1, nullptr, 10));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      flags.host = arg + 7;
      continue;
    }
    if (ParseSizeFlag(arg, "--port", &flags.port) ||
        ParseSizeFlag(arg, "--clients", &flags.clients) ||
        ParseSizeFlag(arg, "--requests", &flags.requests) ||
        ParseSizeFlag(arg, "--rows", &flags.rows) ||
        ParseSizeFlag(arg, "--dims", &flags.dims)) {
      continue;
    }
    std::fprintf(stderr, "rrr_loadgen: unknown flag: %s\n", arg);
    return 2;
  }
  if (flags.port == 0 || flags.port > 65535) {
    std::fprintf(stderr, "rrr_loadgen: --port=N required\n");
    return 2;
  }

  rrr::bench::BenchJson::Global().Begin(
      "service", "rrr_serverd load burst (mixed / deadline / busy phases)");
  rrr::bench::BenchJson::Global().SetColumns(
      {"phase", "requests", "ok", "busy", "deadline_exceeded", "errors",
       "retries", "degraded", "p50_ms", "p95_ms", "total_sec", "qps"});
  std::printf(
      "phase,requests,ok,busy,deadline_exceeded,errors,retries,degraded,"
      "p50_ms,p95_ms,total_sec,qps\n");

  // Control connection: register the dataset and wait for READY.
  LineClient control;
  if (!control.Connect(flags.host, static_cast<uint16_t>(flags.port)).ok()) {
    std::fprintf(stderr, "rrr_loadgen: cannot connect to %s:%zu\n",
                 flags.host.c_str(), flags.port);
    return 1;
  }
  const std::string dataset = "loadgen";
  control.Request("REGISTER name=" + dataset +
                  " gen=uniform n=" + std::to_string(flags.rows) +
                  " d=" + std::to_string(flags.dims) + " seed=7");
  bool ready = false;
  for (int i = 0; i < 600 && !ready; ++i) {
    rrr::Result<Reply> status = control.Request("STATUS name=" + dataset);
    if (!status.ok()) break;
    const std::string* state = status.value().Find("state");
    if (state != nullptr && *state == "READY") ready = true;
    if (state != nullptr && *state == "FAILED") break;
    if (!ready) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!ready) {
    std::fprintf(stderr, "rrr_loadgen: dataset never became READY\n");
    return 1;
  }

  // Phase 1: mixed SOLVE/DUAL/EVAL burst.
  const auto mixed_start = std::chrono::steady_clock::now();
  Tally mixed = FanOut(
      flags, flags.clients, [&](size_t who, LineClient* client, Tally* out) {
        for (size_t r = 0; r < flags.requests; ++r) {
          const size_t k = 2 + (who + r) % 5;
          switch (r % 3) {
            case 0:
              RunOne(client,
                     "SOLVE name=" + dataset + " k=" + std::to_string(k),
                     out);
              break;
            case 1:
              RunOne(client, "DUAL name=" + dataset + " max_size=8", out);
              break;
            default:
              RunOne(client,
                     "EVAL name=" + dataset +
                         " ids=0,1,2,3 k=" + std::to_string(k),
                     out);
              break;
          }
        }
      });
  const double mixed_sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - mixed_start)
                               .count();
  Report("mixed", flags.clients * flags.requests, &mixed, mixed_sec);

  // Phase 2: deadline pressure. A long SLEEP occupies workers while short
  // deadlines queue behind it; the deadline clock starts at admission, so
  // the queued queries expire.
  const size_t deadline_reqs = 8;
  const auto deadline_start = std::chrono::steady_clock::now();
  Tally deadline = FanOut(
      flags, deadline_reqs, [&](size_t who, LineClient* client, Tally* out) {
        if (who == 0) {
          RunOne(client, "SLEEP ms=400", out);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          RunOne(client, "SLEEP ms=300 deadline_ms=1", out);
        }
      });
  const double deadline_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    deadline_start)
          .count();
  Report("deadline", deadline_reqs, &deadline, deadline_sec);

  // Phase 3: admission overload. Far more concurrent SLEEPs than workers +
  // queue slots; the excess must get the typed busy rejection.
  const size_t busy_reqs = 64;
  const auto busy_start = std::chrono::steady_clock::now();
  Tally busy = FanOut(flags, busy_reqs,
                      [&](size_t, LineClient* client, Tally* out) {
                        RunOne(client, "SLEEP ms=250", out);
                      });
  const double busy_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - busy_start)
                              .count();
  Report("busy", busy_reqs, &busy, busy_sec);

  // Phase 4: fault injection. A fresh dataset (so its artifacts are not
  // already cached from the mixed phase), candidate-index builds that
  // always fail (every-1 → every query degrades to the legacy path), and
  // periodic io_errors from admission that the retry policy must absorb.
  const std::string faultds = "loadgen_fault";
  control.Request("REGISTER name=" + faultds +
                  " gen=uniform n=" + std::to_string(flags.rows / 4 + 50) +
                  " d=" + std::to_string(flags.dims) + " seed=11");
  bool fault_ready = false;
  for (int i = 0; i < 600 && !fault_ready; ++i) {
    rrr::Result<Reply> status = control.Request("STATUS name=" + faultds);
    if (!status.ok()) break;
    const std::string* state = status.value().Find("state");
    if (state != nullptr && *state == "READY") fault_ready = true;
    if (state != nullptr && *state == "FAILED") break;
    if (!fault_ready) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  Tally fault;
  double fault_sec = 0;
  const size_t fault_reqs = flags.clients * (flags.requests / 2 + 1);
  if (fault_ready) {
    control.Request(
        "FAILPOINT site=core.artifact.candidate_index spec=every-1");
    control.Request("FAILPOINT site=service.admission.submit spec=every-9");
    rrr::service::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff_ms = 2;
    policy.max_backoff_ms = 40;
    const auto fault_start = std::chrono::steady_clock::now();
    fault = FanOut(flags, flags.clients,
                   [&](size_t who, LineClient* client, Tally* out) {
                     for (size_t r = 0; r < flags.requests / 2 + 1; ++r) {
                       const size_t k = 2 + (who + r) % 5;
                       RunOneWithRetry(client,
                                       "SOLVE name=" + faultds +
                                           " k=" + std::to_string(k),
                                       policy, out);
                     }
                   });
    fault_sec = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - fault_start)
                    .count();
    control.Request("FAILPOINT clear=1");
  } else {
    std::fprintf(stderr, "rrr_loadgen: fault dataset never became READY\n");
    fault.errors = 1;
  }
  Report("fault", fault_reqs, &fault, fault_sec);

  // Final STATS snapshot for the log.
  rrr::Result<std::map<std::string, std::string>> stats =
      control.RequestStats();
  if (stats.ok()) {
    for (const char* key :
         {"queries_total", "memo_hits", "deadline_exceeded", "cancelled",
          "busy_rejections", "degraded_queries", "cache_bytes",
          "evictions"}) {
      const auto it = stats.value().find(key);
      if (it != stats.value().end()) {
        std::printf("# stats %s=%s\n", key, it->second.c_str());
      }
    }
  }
  rrr::Result<std::string> json =
      rrr::bench::BenchJson::Global().WriteFile();
  if (json.ok()) std::printf("# wrote %s\n", json.value().c_str());

  const bool healthy = mixed.errors == 0 && mixed.busy + mixed.ok > 0 &&
                       deadline.deadline >= 1 && busy.busy >= 1 &&
                       deadline.errors == 0 && busy.errors == 0 &&
                       fault.errors == 0 && fault.degraded >= 1 &&
                       fault.retries >= 1;
  if (!healthy) {
    std::fprintf(stderr, "rrr_loadgen: phase expectations not met\n");
    return 1;
  }
  return 0;
}
