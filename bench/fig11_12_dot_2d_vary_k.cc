// Figures 11 + 12: DOT dataset, 2D — efficiency and effectiveness of 2DRRR,
// MDRRR and MDRC while k varies; n fixed to the default.
//
// Expected shape: 2DRRR/MDRRR times dominated by the sweep (flat-ish in k),
// MDRC milliseconds; output sizes shrink as k grows; all rank-regrets stay
// at or below k.
#include <algorithm>
#include <string>
#include <vector>
#include "common/string_util.h"
#include "common/timer.h"
#include "core/kset_enum2d.h"
#include "core/mdrc.h"
#include "core/mdrrr.h"
#include "core/rrr2d.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  const size_t n = bench::FullScale() ? 10000 : 4000;
  bench::PrintFigureHeader(
      "fig11_12_dot_2d_vary_k",
      "Figures 11 (time) + 12 (quality)",
      StrFormat("DOT-like, d=2, n=%zu, vary k", n),
      "algorithm,k_percent,k,time_sec,exact_rank_regret,output_size");

  const data::Dataset ds = data::GenerateDotLike(n, 42).ProjectPrefix(2);
  const std::vector<double> k_percents = {0.0005, 0.002, 0.01, 0.1};

  for (double kp : k_percents) {
    const size_t k =
        std::max<size_t>(1, static_cast<size_t>(kp * static_cast<double>(n)));
    const std::string kp_str = StrFormat("%.2f%%", kp * 100.0);

    auto report = [&](const char* name, double seconds,
                      const std::vector<int32_t>& rep) {
      Result<int64_t> regret = eval::ExactRankRegret2D(ds, rep);
      RRR_CHECK_OK(regret.status());
      bench::PrintRow({name, kp_str, std::to_string(k),
                       StrFormat("%.4f", seconds),
                       StrFormat("%lld", static_cast<long long>(*regret)),
                       std::to_string(rep.size())});
    };

    Stopwatch timer;
    Result<std::vector<int32_t>> rrr2d = core::Solve2dRrr(ds, k);
    RRR_CHECK_OK(rrr2d.status());
    report("2DRRR", timer.ElapsedSeconds(), *rrr2d);

    timer.Restart();
    Result<core::KSetCollection> ksets = core::EnumerateKSets2D(ds, k);
    RRR_CHECK_OK(ksets.status());
    Result<std::vector<int32_t>> mdrrr = core::SolveMdrrr(ds, *ksets);
    RRR_CHECK_OK(mdrrr.status());
    report("MDRRR", timer.ElapsedSeconds(), *mdrrr);

    timer.Restart();
    Result<std::vector<int32_t>> mdrc = core::SolveMdrc(ds, k);
    RRR_CHECK_OK(mdrc.status());
    report("MDRC", timer.ElapsedSeconds(), *mdrc);
  }
  return 0;
}
