// Figure 14: DOT dataset — number of k-sets vs the dimensionality d
// (k = 1% of n). Upper bounds: O(n k^{1/3}) for d=2 [Dey], O(n k^{3/2})
// for d=3 [Sharir et al.], O(n^{d-eps}) beyond [Alon et al.] (plotted with
// eps = 0.5).
//
// Expected shape: |S| grows steeply with d but stays far below the bounds,
// whose looseness for d >= 4 is the paper's point.
#include <algorithm>
#include <string>
#include <vector>
#include <cmath>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/kset_sampler.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  const size_t n = bench::DefaultN();
  const size_t k = std::max<size_t>(1, n / 100);
  bench::PrintFigureHeader(
      "fig14_ksets_dot_vary_d", "Figure 14", StrFormat("DOT-like, n=%zu, k=%zu: |S| vs d", n, k),
      "d,ksets_actual,upper_bound,samples,time_sec");

  const data::Dataset all = data::GenerateDotLike(n, 42);
  const size_t max_d = bench::FullScale() ? 6 : 5;
  for (size_t d = 2; d <= max_d; ++d) {
    const data::Dataset ds = all.ProjectPrefix(d);
    Stopwatch timer;
    Result<core::KSetSampleResult> sample = core::SampleKSets(ds, k);
    RRR_CHECK_OK(sample.status());
    double bound;
    if (d == 2) {
      bound = static_cast<double>(n) * std::cbrt(static_cast<double>(k));
    } else if (d == 3) {
      bound = static_cast<double>(n) * std::pow(static_cast<double>(k), 1.5);
    } else {
      bound = std::pow(static_cast<double>(n),
                       static_cast<double>(d) - 0.5);
    }
    bench::PrintRow({std::to_string(d),
                     std::to_string(sample->ksets.size()),
                     StrFormat("%.3g", bound),
                     std::to_string(sample->samples_drawn),
                     StrFormat("%.4f", timer.ElapsedSeconds())});
  }
  return 0;
}
