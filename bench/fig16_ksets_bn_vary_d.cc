// Figure 16: Blue-Nile-like dataset — number of k-sets vs dimensionality d
// (k = 1% of n; same protocol and bounds as Figure 14; BN has 5 columns).
#include <algorithm>
#include <string>
#include <vector>
#include <cmath>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/kset_sampler.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  const size_t n = bench::DefaultN();
  const size_t k = std::max<size_t>(1, n / 100);
  bench::PrintFigureHeader(
      "fig16_ksets_bn_vary_d", "Figure 16", StrFormat("BN-like, n=%zu, k=%zu: |S| vs d", n, k),
      "d,ksets_actual,upper_bound,samples,time_sec");

  const data::Dataset all = data::GenerateBnLike(n, 42);
  for (size_t d = 2; d <= 5; ++d) {
    const data::Dataset ds = all.ProjectPrefix(d);
    Stopwatch timer;
    Result<core::KSetSampleResult> sample = core::SampleKSets(ds, k);
    RRR_CHECK_OK(sample.status());
    double bound;
    if (d == 2) {
      bound = static_cast<double>(n) * std::cbrt(static_cast<double>(k));
    } else if (d == 3) {
      bound = static_cast<double>(n) * std::pow(static_cast<double>(k), 1.5);
    } else {
      bound = std::pow(static_cast<double>(n),
                       static_cast<double>(d) - 0.5);
    }
    bench::PrintRow({std::to_string(d),
                     std::to_string(sample->ksets.size()),
                     StrFormat("%.3g", bound),
                     std::to_string(sample->samples_drawn),
                     StrFormat("%.4f", timer.ElapsedSeconds())});
  }
  return 0;
}
