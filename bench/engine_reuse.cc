// Amortized-vs-cold timings for the prepared-dataset engine (RrrEngine):
// the payoff of prepare-once/query-many over the one-shot free functions.
//
// Phases per case:
//   cold         first Solve on a fresh engine (prepare + full solve)
//   warm_memo    identical repeat Solve (served from the (k, algorithm)
//                result memo — the acceptance target is >= 10x at n=50k)
//   warm_nocache repeat Solve with the result memo bypassed: the solver
//                re-runs but reuses the shared artifacts (MDRC corner
//                memo, 2D sweep), isolating their contribution
//   dual_cold /  SolveDual on a fresh engine vs the same engine again
//   dual_warm    (every probe then replays from the memo)
//
// The committed BENCH_engine_reuse.json is this driver's output; re-run
// after engine or solver changes and diff.
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "data/generators.h"
#include "figure_util.h"

namespace {

struct Timed {
  double seconds = 0.0;
  size_t output_size = 0;
};

void Row(const std::string& case_name, const std::string& algorithm,
         size_t n, size_t d, size_t k, const std::string& phase,
         const Timed& timed, double cold_seconds) {
  rrr::bench::PrintRow(
      {case_name, algorithm, rrr::StrFormat("%zu", n),
       rrr::StrFormat("%zu", d), rrr::StrFormat("%zu", k), phase,
       rrr::StrFormat("%.6f", timed.seconds),
       rrr::StrFormat("%zu", timed.output_size),
       rrr::StrFormat("%.1f", timed.seconds > 0.0
                                  ? cold_seconds / timed.seconds
                                  : 0.0)});
}

}  // namespace

int main() {
  using namespace rrr;
  bench::PrintFigureHeader(
      "engine_reuse", "Engine reuse",
      "prepared-dataset engine: cold vs amortized queries (n=50k MDRC, "
      "2D sweep reuse, dual-search replay)",
      "case,algorithm,n,d,k,phase,time_sec,output_size,speedup_vs_cold");

  // Case 1 — the acceptance case: MDRC at n = 50k, k = 1%.
  {
    const size_t n = 50000;
    const size_t k = n / 100;
    const data::Dataset ds = data::GenerateDotLike(n, 42).ProjectPrefix(3);

    auto engine = *core::RrrEngine::Create(data::Dataset(ds));
    Stopwatch timer;
    Result<core::QueryResult> cold = engine->Solve(k);
    const double cold_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(cold.status());
    Row("mdrc_50k", "MDRC", n, 3, k, "cold",
        {cold_sec, cold->representative.size()}, cold_sec);

    timer.Restart();
    Result<core::QueryResult> warm = engine->Solve(k);
    const double warm_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(warm.status());
    RRR_CHECK(warm->diagnostics.result_from_cache);
    RRR_CHECK(warm->representative == cold->representative);
    Row("mdrc_50k", "MDRC", n, 3, k, "warm_memo",
        {warm_sec, warm->representative.size()}, cold_sec);

    core::QueryOptions no_memo;
    no_memo.use_cache = false;
    timer.Restart();
    Result<core::QueryResult> resolve = engine->Solve(k, no_memo);
    const double resolve_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(resolve.status());
    RRR_CHECK(resolve->representative == cold->representative);
    Row("mdrc_50k", "MDRC", n, 3, k, "warm_nocache",
        {resolve_sec, resolve->representative.size()}, cold_sec);
  }

  // Case 2 — 2D: the shared sweep absorbs the per-query initial sort; the
  // memo absorbs everything.
  {
    const size_t n = 4000;
    const size_t k = 40;
    const data::Dataset ds = data::GenerateDotLike(n, 42).ProjectPrefix(2);
    auto engine = *core::RrrEngine::Create(data::Dataset(ds));
    Stopwatch timer;
    Result<core::QueryResult> cold = engine->Solve(k);
    const double cold_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(cold.status());
    Row("rrr2d_4k", "2DRRR", n, 2, k, "cold",
        {cold_sec, cold->representative.size()}, cold_sec);

    timer.Restart();
    Result<core::QueryResult> warm = engine->Solve(k);
    const double warm_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(warm.status());
    RRR_CHECK(warm->diagnostics.result_from_cache);
    Row("rrr2d_4k", "2DRRR", n, 2, k, "warm_memo",
        {warm_sec, warm->representative.size()}, cold_sec);

    core::QueryOptions no_memo;
    no_memo.use_cache = false;
    timer.Restart();
    Result<core::QueryResult> resolve = engine->Solve(k, no_memo);
    const double resolve_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(resolve.status());
    Row("rrr2d_4k", "2DRRR", n, 2, k, "warm_nocache",
        {resolve_sec, resolve->representative.size()}, cold_sec);
  }

  // Case 3 — dual search: O(log n) probes share one prepared dataset; a
  // repeated search replays every probe from the memo. The tight budget
  // keeps the search's boundary k inside MDRC's sane regime (k a
  // meaningful fraction of n); the node cap makes any probe that still
  // strays into the tiny-k pathology exhaust quickly instead of burning
  // the full 4M-node budget (the search then walks upward, by design).
  {
    const size_t n = 50000;
    const size_t budget = 3;
    const data::Dataset ds = data::GenerateDotLike(n, 42).ProjectPrefix(3);
    core::EngineOptions options;
    options.defaults.algorithm = core::Algorithm::kMdRc;
    options.defaults.mdrc.max_nodes = 100000;
    auto engine = *core::RrrEngine::Create(data::Dataset(ds), options);
    Stopwatch timer;
    Result<core::DualResult> cold = engine->SolveDual(budget);
    const double cold_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(cold.status());
    Row("dual_50k", "MDRC", n, 3, budget, "dual_cold",
        {cold_sec, cold->representative.size()}, cold_sec);

    timer.Restart();
    Result<core::DualResult> warm = engine->SolveDual(budget);
    const double warm_sec = timer.ElapsedSeconds();
    RRR_CHECK_OK(warm.status());
    RRR_CHECK(warm->representative == cold->representative);
    Row("dual_50k", "MDRC", n, 3, budget, "dual_warm",
        {warm_sec, warm->representative.size()}, cold_sec);
  }
  return 0;
}
