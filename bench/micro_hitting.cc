// Micro-benchmarks + ablation for the hitting-set engines of MDRRR:
// greedy vs Bronnimann-Goodrich eps-net, and the interval-cover strategies
// of 2DRRR (the optimal sweep vs the paper's max-coverage greedy).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "hitting/epsnet.h"
#include "hitting/greedy.h"
#include "hitting/interval_cover.h"

namespace {

rrr::hitting::SetSystem RandomSystem(uint64_t seed, int32_t universe,
                                     size_t num_sets, size_t set_size) {
  rrr::Rng rng(seed);
  rrr::hitting::SetSystem s;
  for (size_t i = 0; i < num_sets; ++i) {
    std::vector<int32_t> set;
    for (size_t j = 0; j < set_size; ++j) {
      set.push_back(static_cast<int32_t>(rng.UniformInt(0, universe - 1)));
    }
    s.sets.push_back(std::move(set));
  }
  return s;
}

void BM_GreedyHittingSet(benchmark::State& state) {
  const auto s = RandomSystem(1, static_cast<int32_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)), 8);
  for (auto _ : state) {
    auto hit = rrr::hitting::GreedyHittingSet(s);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_GreedyHittingSet)->Args({100, 200})->Args({1000, 2000});

void BM_EpsNetHittingSet(benchmark::State& state) {
  const auto s = RandomSystem(2, static_cast<int32_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)), 8);
  for (auto _ : state) {
    auto hit = rrr::hitting::EpsNetHittingSet(s);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_EpsNetHittingSet)->Args({100, 200})->Args({1000, 2000});

std::vector<rrr::hitting::Interval> RandomIntervals(uint64_t seed,
                                                    size_t count) {
  rrr::Rng rng(seed);
  std::vector<rrr::hitting::Interval> ivs;
  // A guaranteed cover chain plus noise.
  double reach = 0.0;
  int32_t id = 0;
  while (reach < 1.0) {
    const double b = std::max(0.0, reach - 0.01);
    const double e = reach + rng.Uniform(0.02, 0.08);
    ivs.push_back({b, e, id++});
    reach = e;
  }
  while (ivs.size() < count) {
    const double b = rng.Uniform(0.0, 0.95);
    ivs.push_back({b, b + rng.Uniform(0.01, 0.2), id++});
  }
  return ivs;
}

void BM_IntervalCoverSweep(benchmark::State& state) {
  const auto ivs = RandomIntervals(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto cover = rrr::hitting::CoverLine(
        ivs, 0.0, 1.0, rrr::hitting::CoverStrategy::kSweep);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_IntervalCoverSweep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IntervalCoverMaxCoverage(benchmark::State& state) {
  const auto ivs = RandomIntervals(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto cover = rrr::hitting::CoverLine(
        ivs, 0.0, 1.0, rrr::hitting::CoverStrategy::kGreedyMaxCoverage);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_IntervalCoverMaxCoverage)->Arg(100)->Arg(1000);

}  // namespace
