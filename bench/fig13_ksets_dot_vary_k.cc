// Figure 13: DOT dataset, d=3 — number of k-sets discovered by K-SETr vs
// the best known theoretical upper bound O(n k^{3/2}) [Sharir et al.],
// and the K-SETr running time, while k varies.
//
// Expected shape: actual |S| orders of magnitude below the bound, growing
// with k; K-SETr time grows with |S|.
#include <algorithm>
#include <string>
#include <vector>
#include <cmath>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/kset_sampler.h"
#include "data/generators.h"
#include "figure_util.h"

int main() {
  using namespace rrr;
  const size_t n = bench::DefaultN();
  bench::PrintFigureHeader(
      "fig13_ksets_dot_vary_k", "Figure 13", StrFormat("DOT-like, d=3, n=%zu: |S| vs k", n),
      "k_percent,k,ksets_actual,upper_bound_nk32,samples,time_sec");

  const data::Dataset ds = data::GenerateDotLike(n, 42).ProjectPrefix(3);
  for (double kp : {0.001, 0.01, 0.1}) {
    const size_t k =
        std::max<size_t>(1, static_cast<size_t>(kp * static_cast<double>(n)));
    Stopwatch timer;
    Result<core::KSetSampleResult> sample = core::SampleKSets(ds, k);
    RRR_CHECK_OK(sample.status());
    const double bound =
        static_cast<double>(n) * std::pow(static_cast<double>(k), 1.5);
    bench::PrintRow({StrFormat("%.1f%%", kp * 100.0), std::to_string(k),
                     std::to_string(sample->ksets.size()),
                     StrFormat("%.3g", bound),
                     std::to_string(sample->samples_drawn),
                     StrFormat("%.4f", timer.ElapsedSeconds())});
  }
  return 0;
}
