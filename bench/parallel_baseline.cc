// Serial-vs-parallel baseline for the rrr::common::ThreadPool subsystem:
// the three parallelized hot paths (MDRC cell expansion, K-SETr sampling,
// the sampled rank-regret evaluator) timed at 1/2/4/hardware threads on one
// fixed workload each. The committed BENCH_parallel_baseline.json is this
// driver's output — the first recorded perf trajectory point; re-run after
// any solver change and diff.
//
// Representatives are thread-count invariant (the equivalence tests pin
// this), so rows differ only in wall time.
#include <algorithm>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/kset_sampler.h"
#include "core/mdrc.h"
#include "data/generators.h"
#include "eval/rank_regret.h"
#include "figure_util.h"

namespace {

std::vector<size_t> ThreadSweep() {
  std::vector<size_t> sweep = {1, 2, 4};
  const size_t hw = rrr::HardwareConcurrency();
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }
  return sweep;
}

}  // namespace

int main() {
  using namespace rrr;
  bench::PrintFigureHeader(
      "parallel_baseline", "Parallel baseline",
      "MDRC n=100k (d=3 and d=5) / K-SETr n=4k / evaluator n=100k, "
      "serial vs parallel",
      "algorithm,n,d,k,threads,time_sec,output_size,speedup_vs_serial");

  // MDRC: the fig17 acceptance workload (d=3, k=1%, shallow tree) and a
  // deep-tree variant (d=5, k=0.5%) where corner evaluations dominate and
  // the per-depth fan-out has real width. One untimed warm-up solve per
  // dataset keeps first-touch page faults out of the serial row.
  {
    const size_t n = 100000;
    const data::Dataset all = data::GenerateDotLike(n, 42);
    struct McdrcCase {
      size_t d;
      size_t k;
    };
    for (const McdrcCase& c : {McdrcCase{3, n / 100}, McdrcCase{5, n / 200}}) {
      const data::Dataset ds = all.ProjectPrefix(c.d);
      RRR_CHECK_OK(core::SolveMdrc(ds, c.k, {}).status());  // warm-up
      double serial_time = 0.0;
      for (size_t threads : ThreadSweep()) {
        core::MdrcOptions opts;
        opts.threads = threads;
        Stopwatch timer;
        Result<std::vector<int32_t>> rep = core::SolveMdrc(ds, c.k, opts);
        const double t = timer.ElapsedSeconds();
        RRR_CHECK_OK(rep.status());
        if (threads == 1) serial_time = t;
        bench::PrintRow({"MDRC", StrFormat("%zu", n),
                         StrFormat("%zu", c.d), StrFormat("%zu", c.k),
                         StrFormat("%zu", threads), StrFormat("%.4f", t),
                         StrFormat("%zu", rep->size()),
                         StrFormat("%.2f", serial_time / t)});
      }
    }
  }

  // K-SETr sampling: per-sample top-k scans fan out. Sized so one thread
  // sweep stays seconds, not minutes (this driver is CI's bench smoke).
  {
    const size_t n = 4000;
    const size_t k = 40;
    const data::Dataset ds = data::GenerateDotLike(n, 42).ProjectPrefix(3);
    RRR_CHECK_OK(core::SampleKSets(ds, k, {}).status());  // warm-up
    double serial_time = 0.0;
    for (size_t threads : ThreadSweep()) {
      core::KSetSamplerOptions opts;
      opts.threads = threads;
      Stopwatch timer;
      Result<core::KSetSampleResult> sample = core::SampleKSets(ds, k, opts);
      const double t = timer.ElapsedSeconds();
      RRR_CHECK_OK(sample.status());
      if (threads == 1) serial_time = t;
      bench::PrintRow({"K-SETr", StrFormat("%zu", n), "3",
                       StrFormat("%zu", k), StrFormat("%zu", threads),
                       StrFormat("%.4f", t),
                       StrFormat("%zu", sample->ksets.size()),
                       StrFormat("%.2f", serial_time / t)});
    }
  }

  // Sampled rank-regret evaluator: per-function rank scans fan out.
  {
    const size_t n = 100000;
    const size_t k = n / 100;
    const data::Dataset ds = data::GenerateDotLike(n, 42).ProjectPrefix(3);
    Result<std::vector<int32_t>> rep = core::SolveMdrc(ds, k, {});
    RRR_CHECK_OK(rep.status());
    {
      eval::SampledRankRegretOptions warmup;
      warmup.num_functions = 100;
      RRR_CHECK_OK(eval::SampledRankRegret(ds, *rep, warmup).status());
    }
    double serial_time = 0.0;
    for (size_t threads : ThreadSweep()) {
      eval::SampledRankRegretOptions opts;
      opts.num_functions = 2000;
      opts.threads = threads;
      Stopwatch timer;
      Result<int64_t> regret = eval::SampledRankRegret(ds, *rep, opts);
      const double t = timer.ElapsedSeconds();
      RRR_CHECK_OK(regret.status());
      if (threads == 1) serial_time = t;
      bench::PrintRow({"EVAL-SAMPLED", StrFormat("%zu", n), "3",
                       StrFormat("%zu", k), StrFormat("%zu", threads),
                       StrFormat("%.4f", t), StrFormat("%zu", rep->size()),
                       StrFormat("%.2f", serial_time / t)});
    }
  }
  return 0;
}
