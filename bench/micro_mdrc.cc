// Micro-benchmarks + ablations for MDRC: scaling in n, d, k, and the value
// of the corner-top-k memo cache (the design choice DESIGN.md calls out).
#include <benchmark/benchmark.h>

#include "core/mdrc.h"
#include "data/generators.h"

namespace {

using rrr::core::MdrcStats;
using rrr::core::SolveMdrc;
using rrr::data::Dataset;
using rrr::data::GenerateDotLike;

void BM_MdrcVaryN(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset ds = GenerateDotLike(n, 1).ProjectPrefix(3);
  const size_t k = std::max<size_t>(1, n / 100);
  MdrcStats stats;
  for (auto _ : state) {
    auto rep = SolveMdrc(ds, k, {}, &stats);
    benchmark::DoNotOptimize(rep);
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["cache_hit_ratio"] =
      static_cast<double>(stats.cache_hits) /
      static_cast<double>(stats.cache_hits + stats.corner_evals);
}
BENCHMARK(BM_MdrcVaryN)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MdrcVaryD(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Dataset ds = GenerateDotLike(5000, 2).ProjectPrefix(d);
  MdrcStats stats;
  for (auto _ : state) {
    auto rep = SolveMdrc(ds, 50, {}, &stats);
    benchmark::DoNotOptimize(rep);
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes);
}
BENCHMARK(BM_MdrcVaryD)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_MdrcLeafReuseAblation(benchmark::State& state) {
  // range(0) == 1 -> reuse on (default), 0 -> the paper's literal "I[1]".
  const Dataset ds = GenerateDotLike(5000, 4).ProjectPrefix(5);
  rrr::core::MdrcOptions opts;
  opts.reuse_chosen = state.range(0) == 1;
  size_t size = 0;
  for (auto _ : state) {
    auto rep = SolveMdrc(ds, 50, opts);
    size = rep->size();
    benchmark::DoNotOptimize(rep);
  }
  state.counters["output_size"] = static_cast<double>(size);
}
BENCHMARK(BM_MdrcLeafReuseAblation)->Arg(0)->Arg(1);

void BM_MdrcVaryK(benchmark::State& state) {
  const Dataset ds = GenerateDotLike(10000, 3).ProjectPrefix(3);
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto rep = SolveMdrc(ds, k);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_MdrcVaryK)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
