#ifndef RRR_BENCH_FIGURE_UTIL_H_
#define RRR_BENCH_FIGURE_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "baseline/hd_rrms.h"
#include "data/dataset.h"

namespace rrr {
namespace bench {

/// True when RRR_BENCH_FULL=1: paper-scale sweeps (minutes to hours)
/// instead of the laptop-scale defaults (seconds).
bool FullScale();

/// Ranking functions used by the sampled rank-regret estimator: 10,000 in
/// full mode (the paper's protocol), 1,000 scaled.
size_t EvalFunctions();

/// Prints the figure banner (which paper figure, the setting, the columns)
/// and opens the machine-readable BENCH_<slug>.json report (bench_json.h);
/// every subsequent PrintRow lands in both. `slug` must be a stable
/// filename-safe driver name (e.g. "fig17_18_dot_md_vary_n").
void PrintFigureHeader(const std::string& slug, const std::string& figure,
                       const std::string& title, const std::string& columns);

/// Prints one CSV row (already formatted values) and records it in the
/// JSON report.
void PrintRow(const std::vector<std::string>& cells);

/// Dataset-size sweep used by the vary-n figures.
std::vector<size_t> NSweep(size_t full_max);

/// Dataset-size sweep for the 2D figures, where every algorithm (and the
/// exact evaluator) pays a quadratic sweep: capped at 8,000 scaled.
std::vector<size_t> NSweep2D(size_t full_max);

/// Default dataset size for fixed-n figures (10,000 in the paper).
size_t DefaultN();

/// Runs the three-way comparison row used by Figures 17-28: MDRC, MDRRR
/// (K-SETr + hitting set), HD-RRMS at MDRC's output size; prints time and
/// quality rows. Set `run_mdrrr` to false where the paper reports MDRRR as
/// not scaling.
struct MdComparisonConfig {
  std::string label;       // value of the x-axis (n, d, or k)
  size_t k = 0;
  bool run_mdrrr = true;
  uint64_t eval_seed = 23;
  /// Worker threads for MDRC/MDRRR/the evaluator: 0 = hardware concurrency.
  size_t threads = 0;
};
void RunMdComparisonRow(const data::Dataset& dataset,
                        const MdComparisonConfig& config);

/// Column list matching RunMdComparisonRow's output; `x` names the swept
/// variable ("n", "d", or "k").
std::string MdComparisonColumns(const std::string& x);

}  // namespace bench
}  // namespace rrr

#endif  // RRR_BENCH_FIGURE_UTIL_H_
