// Exports the top-k border (Figure 3 of the paper) of a 2D dataset as
// plot-ready CSV: for each angular facet, the owning tuple and the dual
// line segment it contributes. Border facets and the engine's rank-regret
// representative come from one prepared dataset, so the overlay column
// (`chosen`) marks exactly the tuples a plot should highlight.
//
//   ./build/examples/kborder_plot [n] [k] > border.csv
//   gnuplot> plot 'border.csv' using 3:4 with lines
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "core/engine.h"
#include "core/kborder.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 40;
  const size_t k = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 3;

  const rrr::data::Dataset ds = rrr::data::GenerateUniform(n, 2, 7);
  rrr::Result<std::vector<rrr::core::KBorderSegment>> border =
      rrr::core::ComputeKBorder2D(ds, k);
  if (!border.ok()) {
    std::fprintf(stderr, "%s\n", border.status().ToString().c_str());
    return 1;
  }

  // The representative whose members own every facet of the k-border up to
  // the 2k guarantee — highlighted in the CSV's `chosen` column.
  rrr::Result<std::shared_ptr<rrr::core::RrrEngine>> engine =
      rrr::core::RrrEngine::Create(rrr::data::Dataset(ds));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  rrr::Result<rrr::core::QueryResult> rep = (*engine)->Solve(k);
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  std::unordered_set<int32_t> chosen(rep->representative.begin(),
                                     rep->representative.end());

  std::fprintf(stderr, "# n=%zu k=%zu facets=%zu representative=%zu (%s)\n",
               n, k, border->size(), rep->representative.size(),
               rep->diagnostics.ToString().c_str());
  // In the dual space (Eq. 2) the ranking direction w(theta) meets the
  // owner's dual line at distance 1/score; emitting that point for both
  // facet endpoints traces the piecewise-linear k-border of Figure 3.
  std::printf("item,theta,dual_x,dual_y,chosen\n");
  for (const auto& seg : *border) {
    for (double theta : {seg.begin, seg.end}) {
      const double wx = std::cos(theta);
      const double wy = std::sin(theta);
      const double* t = ds.row(static_cast<size_t>(seg.item));
      const double score = wx * t[0] + wy * t[1];
      if (score <= 0) continue;
      std::printf("%d,%.6f,%.6f,%.6f,%d\n", seg.item, theta, wx / score,
                  wy / score, chosen.count(seg.item) != 0 ? 1 : 0);
    }
  }
  return 0;
}
