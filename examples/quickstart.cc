// Quickstart: the paper's running example (Figure 1) end to end, on the
// prepare-once / query-many engine API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "data/dataset.h"

int main() {
  // The 7-tuple example dataset of the paper (Figure 1). Attributes are
  // already normalized to [0, 1], higher = better.
  rrr::Result<rrr::data::Dataset> ds = rrr::data::Dataset::FromRows(
      {{0.80, 0.28},   // t1
       {0.54, 0.45},   // t2
       {0.67, 0.60},   // t3
       {0.32, 0.42},   // t4
       {0.46, 0.72},   // t5
       {0.23, 0.52},   // t6
       {0.91, 0.43}},  // t7
      {"x1", "x2"});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const size_t n = ds->size();

  // Prepare once: validates the data and builds the shared artifacts every
  // query reuses (the 2D sweep here). The engine is then safe to query
  // from any thread, for any k.
  rrr::Result<std::shared_ptr<rrr::core::RrrEngine>> engine =
      rrr::core::RrrEngine::Create(std::move(*ds));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Ask for a subset that contains a top-2 tuple for EVERY possible linear
  // preference over (x1, x2).
  rrr::Result<rrr::core::QueryResult> res = (*engine)->Solve(2);
  if (!res.ok()) {
    std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
    return 1;
  }

  const rrr::data::Dataset& data = (*engine)->prepared().dataset();
  std::printf("query: %s\n", res->diagnostics.ToString().c_str());
  std::printf("representative (%zu of %zu tuples):\n",
              res->representative.size(), n);
  for (int32_t id : res->representative) {
    std::printf("  t%d = (%.2f, %.2f)\n", id + 1, data.at(id, 0),
                data.at(id, 1));
  }

  // Verify the promise with the engine's exact 2D evaluator: no user,
  // whatever their linear preference, sees their best representative item
  // ranked worse than this.
  rrr::Result<rrr::core::EvalReport> audit =
      (*engine)->Evaluate(res->representative, 2);
  if (audit.ok()) {
    std::printf("exact rank-regret: %lld (requested k = 2, bound 2k)%s\n",
                static_cast<long long>(audit->rank_regret),
                audit->within_k ? " — within k" : "");
  }

  // Repeat queries are free: the engine memoizes per (k, algorithm).
  rrr::Result<rrr::core::QueryResult> again = (*engine)->Solve(2);
  if (again.ok()) {
    std::printf("repeat query served from cache: %s\n",
                again->diagnostics.result_from_cache ? "yes" : "no");
  }
  return 0;
}
