// Quickstart: the paper's running example (Figure 1) end to end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/solver.h"
#include "data/dataset.h"
#include "eval/rank_regret.h"

int main() {
  // The 7-tuple example dataset of the paper (Figure 1). Attributes are
  // already normalized to [0, 1], higher = better.
  rrr::Result<rrr::data::Dataset> ds = rrr::data::Dataset::FromRows(
      {{0.80, 0.28},   // t1
       {0.54, 0.45},   // t2
       {0.67, 0.60},   // t3
       {0.32, 0.42},   // t4
       {0.46, 0.72},   // t5
       {0.23, 0.52},   // t6
       {0.91, 0.43}},  // t7
      {"x1", "x2"});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  // Ask for a subset that contains a top-2 tuple for EVERY possible linear
  // preference over (x1, x2).
  rrr::core::RrrOptions options;
  options.k = 2;
  rrr::Result<rrr::core::RrrResult> res =
      rrr::core::FindRankRegretRepresentative(*ds, options);
  if (!res.ok()) {
    std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
    return 1;
  }

  std::printf("algorithm: %s\n",
              rrr::core::AlgorithmName(res->algorithm_used).c_str());
  std::printf("representative (%zu of %zu tuples):\n",
              res->representative.size(), ds->size());
  for (int32_t id : res->representative) {
    std::printf("  t%d = (%.2f, %.2f)\n", id + 1, ds->at(id, 0),
                ds->at(id, 1));
  }

  // Verify the promise with the exact 2D evaluator: no user, whatever their
  // linear preference, sees their best representative item ranked worse
  // than this.
  rrr::Result<int64_t> regret =
      rrr::eval::ExactRankRegret2D(*ds, res->representative);
  if (regret.ok()) {
    std::printf("exact rank-regret: %lld (requested k = %zu, bound 2k)\n",
                static_cast<long long>(*regret), options.k);
  }
  return 0;
}
