// Flight search (the paper's §1 motivation): a site wants a short list of
// flights such that whatever linear trade-off a traveler has between the
// ranking criteria, a flight from their personal top-k is on it.
//
//   ./build/examples/flight_search [n] [k]
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"
#include "geometry/dominance.h"
#include "topk/rank.h"
#include "topk/scoring.h"

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5000;
  const size_t k = argc > 2 ? static_cast<size_t>(std::atoll(argv[2]))
                            : std::max<size_t>(1, n / 100);

  // Synthetic stand-in for the DOT on-time performance database (8 columns,
  // normalized higher-is-better). The shortlist ranks on the four criteria
  // travelers actually weigh: departure delay, arrival delay, air time and
  // distance.
  const rrr::data::Dataset all_columns = rrr::data::GenerateDotLike(n, 2024);
  rrr::Result<rrr::data::Dataset> projected =
      all_columns.Project({0, 3, 4, 5});
  if (!projected.ok()) {
    std::fprintf(stderr, "%s\n", projected.status().ToString().c_str());
    return 1;
  }
  const rrr::data::Dataset& flights = *projected;
  std::printf("flights: %zu, ranking criteria: %zu, k: %zu\n",
              flights.size(), flights.dims(), k);

  // How big would the classic alternatives be?
  const size_t skyline_size =
      rrr::geometry::Skyline(flights.flat(), flights.size(), flights.dims())
          .size();
  std::printf("skyline (maxima for all monotone rankings): %zu tuples\n",
              skyline_size);

  // Rank-regret representative via MDRC, on a prepared engine (a real
  // flight site would keep the engine alive and serve every visitor's k
  // from the shared caches).
  rrr::core::EngineOptions engine_opts;
  engine_opts.defaults.algorithm = rrr::core::Algorithm::kMdRc;
  rrr::Result<std::shared_ptr<rrr::core::RrrEngine>> engine =
      rrr::core::RrrEngine::Create(rrr::data::Dataset(flights), engine_opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  rrr::Result<rrr::core::QueryResult> res = (*engine)->Solve(k);
  if (!res.ok()) {
    std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("rank-regret representative: %zu tuples (%.3f s)\n",
              res->representative.size(), res->diagnostics.seconds);

  // The same query again is a memo hit — the prepared-engine payoff.
  rrr::Result<rrr::core::QueryResult> repeat = (*engine)->Solve(k);
  if (repeat.ok() && repeat->diagnostics.result_from_cache) {
    std::printf("repeat visitor served from cache in %.6f s\n",
                repeat->diagnostics.seconds);
  }

  // Spot-check a few traveler profiles over (dep_delay, arrival_delay,
  // air_time, distance).
  struct Profile {
    const char* name;
    std::vector<double> weights;
  };
  const std::vector<Profile> profiles = {
      {"business  (delay-averse)", {3.0, 3.0, 0.5, 0.5}},
      {"leisure   (distance-led)", {0.5, 1.0, 2.0, 3.0}},
      {"balanced  (all equal)   ", {1.0, 1.0, 1.0, 1.0}},
  };
  for (const auto& profile : profiles) {
    rrr::topk::LinearFunction f(profile.weights);
    const int64_t best_rank =
        rrr::topk::MinRankOfSubset(flights, f, res->representative);
    std::printf("  %s -> best shortlisted flight ranks #%lld of %zu\n",
                profile.name, static_cast<long long>(best_rank),
                flights.size());
  }

  // And the global certificate, estimated over 10,000 random profiles by
  // the engine's evaluator.
  rrr::Result<rrr::core::EvalReport> audit =
      (*engine)->Evaluate(res->representative, k);
  if (audit.ok()) {
    std::printf(
        "estimated rank-regret over %zu random profiles: %lld "
        "(requested k = %zu, theoretical bound d*k = %zu)\n",
        audit->diagnostics.eval_functions_sampled,
        static_cast<long long>(audit->rank_regret), k, flights.dims() * k);
  }
  return 0;
}
