// Diamond catalog (the paper's Blue Nile scenario), two acts:
//
//  1. The DUAL problem: "our landing page fits exactly `budget` diamonds —
//     what rank guarantee can we make, and which diamonds do we show?"
//  2. The paper's §6 comparison protocol: fix k = 1% of n, run MDRC, give
//     its output size to the score-regret baseline HD-RRMS, and measure
//     both on both objectives. Rank-regret collapses for the baseline when
//     many diamonds congregate in a narrow score band — the paper's core
//     argument for rank- over score-regret.
//
//   ./build/examples/diamond_catalog [n] [budget]
#include <cstdio>
#include <cstdlib>

#include "baseline/hd_rrms.h"
#include "core/engine.h"
#include "data/generators.h"
#include "eval/regret_ratio.h"

int main(int argc, char** argv) {
  const size_t n =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20000;
  const size_t budget =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 10;

  // Synthetic stand-in for the Blue Nile catalog. Shoppers rank on carat,
  // cut depth and price (normalized higher-better; price flipped).
  const rrr::data::Dataset full = rrr::data::GenerateBnLike(n, 7777);
  rrr::Result<rrr::data::Dataset> projected = full.Project({0, 1, 4});
  if (!projected.ok()) {
    std::fprintf(stderr, "%s\n", projected.status().ToString().c_str());
    return 1;
  }
  const rrr::data::Dataset& diamonds = *projected;
  std::printf("catalog: %zu diamonds, criteria: carat, depth, price\n",
              diamonds.size());

  // One engine serves both acts: the dual search's probes and Act 2's
  // fixed-k solve share the prepared dataset and the MDRC corner memo.
  rrr::core::EngineOptions engine_opts;
  engine_opts.defaults.algorithm = rrr::core::Algorithm::kMdRc;
  engine_opts.eval_num_functions = 5000;
  rrr::Result<std::shared_ptr<rrr::core::RrrEngine>> engine =
      rrr::core::RrrEngine::Create(rrr::data::Dataset(diamonds), engine_opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // ---- Act 1: dual problem. ----
  rrr::Result<rrr::core::DualResult> dual = (*engine)->SolveDual(budget);
  if (!dual.ok()) {
    std::fprintf(stderr, "%s\n", dual.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "page budget %zu -> %zu featured diamonds; every shopper finds one of "
      "their personal top-%zu (%zu probes, %.3f s total)\n",
      budget, dual->representative.size(), dual->k, dual->probes.size(),
      dual->seconds);
  std::printf("  %6s %7s %7s %7s\n", "id", "carat", "depth", "price");
  for (int32_t id : dual->representative) {
    std::printf("  %6d %7.3f %7.3f %7.3f\n", id, diamonds.at(id, 0),
                diamonds.at(id, 1), diamonds.at(id, 2));
  }

  // ---- Act 2: the paper's comparison protocol at fixed k = 1% of n. ----
  const size_t k = std::max<size_t>(1, n / 100);
  rrr::Result<rrr::core::QueryResult> mdrc = (*engine)->Solve(k);
  if (!mdrc.ok()) {
    std::fprintf(stderr, "%s\n", mdrc.status().ToString().c_str());
    return 1;
  }
  rrr::baseline::HdRrmsOptions hd_opts;
  hd_opts.num_functions = 200;
  rrr::Result<rrr::baseline::HdRrmsResult> hd = rrr::baseline::SolveHdRrms(
      diamonds, mdrc->representative.size(), hd_opts);
  if (!hd.ok()) {
    std::fprintf(stderr, "%s\n", hd.status().ToString().c_str());
    return 1;
  }

  // The engine's evaluator audits both representatives (5000 sampled
  // rankings, set in engine_opts above).
  const int64_t ours_rank =
      (*engine)->Evaluate(mdrc->representative, k)->rank_regret;
  const int64_t theirs_rank =
      (*engine)->Evaluate(hd->representative, k)->rank_regret;
  const double ours_ratio =
      *rrr::eval::SampledRegretRatio(diamonds, mdrc->representative);
  const double theirs_ratio =
      *rrr::eval::SampledRegretRatio(diamonds, hd->representative);

  std::printf(
      "\npaper protocol: k = %zu (1%% of n), both representatives have %zu "
      "diamonds (est. over 5000 rankings):\n",
      k, mdrc->representative.size());
  std::printf("  %-24s rank-regret %6lld   score-regret-ratio %.4f\n",
              "MDRC (this library):",
              static_cast<long long>(ours_rank), ours_ratio);
  std::printf("  %-24s rank-regret %6lld   score-regret-ratio %.4f\n",
              "HD-RRMS (baseline):",
              static_cast<long long>(theirs_rank), theirs_ratio);
  std::printf(
      "  -> the baseline wins its own score objective but its rank promise "
      "collapses (%lld of %zu); MDRC keeps every shopper within ~top-%zu.\n",
      static_cast<long long>(theirs_rank), diamonds.size(), k);
  return 0;
}
