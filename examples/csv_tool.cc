// Command-line RRR for your own data: load a numeric CSV, normalize with
// per-column directions, and print a rank-regret representative.
//
//   csv_tool <file.csv> <k> [directions] [algorithm]
//
//   directions: one char per column, 'h' = higher-better, 'l' =
//               lower-better (default: all 'h')
//   algorithm:  auto | 2drrr | mdrrr | mdrc   (default: auto)
//
// Example:
//   ./build/examples/csv_tool flights.csv 50 llhh mdrc
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/solver.h"
#include "data/csv.h"
#include "data/normalize.h"
#include "eval/rank_regret.h"

namespace {

int Fail(const rrr::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <file.csv> <k> [directions hl..] [algorithm]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const size_t k = static_cast<size_t>(std::atoll(argv[2]));

  rrr::data::CsvOptions csv_opts;
  csv_opts.skip_bad_rows = true;
  rrr::Result<rrr::data::Dataset> raw = rrr::data::ReadCsv(path, csv_opts);
  if (!raw.ok()) return Fail(raw.status());
  if (raw->empty()) {
    std::fprintf(stderr, "error: no usable rows in %s\n", path.c_str());
    return 1;
  }

  std::vector<rrr::data::Direction> directions(
      raw->dims(), rrr::data::Direction::kHigherBetter);
  if (argc > 3) {
    const char* dirs = argv[3];
    if (std::strlen(dirs) != raw->dims()) {
      std::fprintf(stderr, "error: %zu direction chars for %zu columns\n",
                   std::strlen(dirs), raw->dims());
      return 2;
    }
    for (size_t j = 0; j < raw->dims(); ++j) {
      if (dirs[j] == 'l') {
        directions[j] = rrr::data::Direction::kLowerBetter;
      } else if (dirs[j] != 'h') {
        std::fprintf(stderr, "error: direction must be 'h' or 'l'\n");
        return 2;
      }
    }
  }

  rrr::core::RrrOptions options;
  options.k = k;
  if (argc > 4) {
    const std::string algo = argv[4];
    if (algo == "2drrr") {
      options.algorithm = rrr::core::Algorithm::k2dRrr;
    } else if (algo == "mdrrr") {
      options.algorithm = rrr::core::Algorithm::kMdRrr;
    } else if (algo == "mdrc") {
      options.algorithm = rrr::core::Algorithm::kMdRc;
    } else if (algo != "auto") {
      std::fprintf(stderr, "error: unknown algorithm '%s'\n", algo.c_str());
      return 2;
    }
  }

  rrr::Result<rrr::data::Dataset> normalized =
      rrr::data::MinMaxNormalize(*raw, directions);
  if (!normalized.ok()) return Fail(normalized.status());

  rrr::Result<rrr::core::RrrResult> res =
      rrr::core::FindRankRegretRepresentative(*normalized, options);
  if (!res.ok()) return Fail(res.status());

  std::fprintf(stderr, "# %zu rows x %zu cols, k=%zu, algorithm=%s, %.3fs\n",
               raw->size(), raw->dims(), k,
               rrr::core::AlgorithmName(res->algorithm_used).c_str(),
               res->seconds);
  rrr::eval::SampledRankRegretOptions eval_opts;
  eval_opts.num_functions = 2000;
  rrr::Result<int64_t> regret = rrr::eval::SampledRankRegret(
      *normalized, res->representative, eval_opts);
  if (regret.ok()) {
    std::fprintf(stderr, "# estimated rank-regret: %lld\n",
                 static_cast<long long>(*regret));
  }

  // The chosen rows, original (raw) values, CSV to stdout.
  std::printf("row_id");
  for (const auto& name : raw->column_names()) {
    std::printf(",%s", name.c_str());
  }
  std::printf("\n");
  for (int32_t id : res->representative) {
    std::printf("%d", id);
    for (size_t j = 0; j < raw->dims(); ++j) {
      std::printf(",%.17g", raw->at(static_cast<size_t>(id), j));
    }
    std::printf("\n");
  }
  return 0;
}
