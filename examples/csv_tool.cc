// Command-line RRR for your own data: load a numeric CSV, normalize with
// per-column directions, and print a rank-regret representative.
//
//   csv_tool <file.csv> <k> [directions] [--algorithm=NAME]
//            [--deadline=SECONDS]
//
//   directions:  one char per column, 'h' = higher-better, 'l' =
//                lower-better (default: all 'h')
//   --algorithm: auto | 2drrr | mdrrr | mdrc | maxima   (default: auto;
//                the bare positional form "csv_tool f.csv 50 llhh mdrc"
//                still works)
//   --deadline:  abort with deadline-exceeded after SECONDS of solving
//
// Example:
//   ./build/examples/csv_tool flights.csv 50 llhh --algorithm=mdrc
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/csv.h"
#include "data/normalize.h"

namespace {

int Fail(const rrr::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <file.csv> <k> [directions hl..] "
               "[--algorithm=auto|2drrr|mdrrr|mdrc|maxima] "
               "[--deadline=SECONDS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  rrr::core::Algorithm algorithm = rrr::core::Algorithm::kAuto;
  double deadline_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algorithm=", 0) == 0) {
      rrr::Result<rrr::core::Algorithm> parsed =
          rrr::core::ParseAlgorithm(arg.substr(strlen("--algorithm=")));
      if (!parsed.ok()) return Fail(parsed.status());
      algorithm = *parsed;
    } else if (arg.rfind("--deadline=", 0) == 0) {
      const char* value = arg.c_str() + strlen("--deadline=");
      char* end = nullptr;
      deadline_seconds = std::strtod(value, &end);
      if (end == value || *end != '\0' || deadline_seconds <= 0.0) {
        std::fprintf(stderr,
                     "error: --deadline needs a positive number of seconds, "
                     "got '%s'\n",
                     value);
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2 || positional.size() > 4) return Usage(argv[0]);
  const std::string path = positional[0];
  const size_t k = static_cast<size_t>(std::atoll(positional[1].c_str()));
  if (positional.size() > 3) {
    // Legacy positional algorithm (kept for script compatibility).
    rrr::Result<rrr::core::Algorithm> parsed =
        rrr::core::ParseAlgorithm(positional[3]);
    if (!parsed.ok()) return Fail(parsed.status());
    algorithm = *parsed;
  }

  rrr::data::CsvOptions csv_opts;
  csv_opts.skip_bad_rows = true;
  rrr::Result<rrr::data::Dataset> raw = rrr::data::ReadCsv(path, csv_opts);
  if (!raw.ok()) return Fail(raw.status());
  if (raw->empty()) {
    std::fprintf(stderr, "error: no usable rows in %s\n", path.c_str());
    return 1;
  }

  std::vector<rrr::data::Direction> directions(
      raw->dims(), rrr::data::Direction::kHigherBetter);
  if (positional.size() > 2) {
    const std::string& dirs = positional[2];
    if (dirs.size() != raw->dims()) {
      std::fprintf(stderr, "error: %zu direction chars for %zu columns\n",
                   dirs.size(), raw->dims());
      return 2;
    }
    for (size_t j = 0; j < raw->dims(); ++j) {
      if (dirs[j] == 'l') {
        directions[j] = rrr::data::Direction::kLowerBetter;
      } else if (dirs[j] != 'h') {
        std::fprintf(stderr, "error: direction must be 'h' or 'l'\n");
        return 2;
      }
    }
  }

  rrr::Result<rrr::data::Dataset> normalized =
      rrr::data::MinMaxNormalize(*raw, directions);
  if (!normalized.ok()) return Fail(normalized.status());

  rrr::core::EngineOptions engine_opts;
  engine_opts.defaults.algorithm = algorithm;
  engine_opts.eval_num_functions = 2000;
  rrr::Result<std::shared_ptr<rrr::core::RrrEngine>> engine =
      rrr::core::RrrEngine::Create(std::move(*normalized), engine_opts);
  if (!engine.ok()) return Fail(engine.status());

  rrr::core::QueryOptions query;
  if (deadline_seconds > 0.0) {
    query.exec.deadline = rrr::Deadline::After(deadline_seconds);
  }
  rrr::Result<rrr::core::QueryResult> res = (*engine)->Solve(k, query);
  if (!res.ok()) return Fail(res.status());

  std::fprintf(stderr, "# %zu rows x %zu cols, k=%zu, %s\n", raw->size(),
               raw->dims(), k, res->diagnostics.ToString().c_str());
  rrr::Result<rrr::core::EvalReport> audit =
      (*engine)->Evaluate(res->representative, k, query);
  if (audit.ok()) {
    std::fprintf(stderr, "# %s rank-regret: %lld (within k: %s)\n",
                 audit->exact ? "exact" : "estimated",
                 static_cast<long long>(audit->rank_regret),
                 audit->within_k ? "yes" : "no");
  }

  // The chosen rows, original (raw) values, CSV to stdout.
  std::printf("row_id");
  for (const auto& name : raw->column_names()) {
    std::printf(",%s", name.c_str());
  }
  std::printf("\n");
  for (int32_t id : res->representative) {
    std::printf("%d", id);
    for (size_t j = 0; j < raw->dims(); ++j) {
      std::printf(",%.17g", raw->at(static_cast<size_t>(id), j));
    }
    std::printf("\n");
  }
  return 0;
}
